(* The memory-pressure subsystem: reap/drain correctness, adaptive
   target convergence, bounded retries, and determinism (including with
   the flight recorder installed). *)

open Kma

let sizes = [| 64; 256; 1024 |]

(* One E8-shaped churn round: allocate [batch] mixed-size blocks, then
   free them all LIFO.  Freeing whole batches pushes lists through the
   global layer and returns fully-free pages, so every round generates
   fresh VM traffic (and fresh chances to be denied).  Returns the
   number of permanent allocation failures. *)
let churn ?(rounds = 12) ?(batch = 60) k =
  let slots = Array.make batch 0 in
  let failures = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to batch - 1 do
      match Kmem.try_alloc k ~bytes:sizes.(i mod 3) with
      | Some a -> slots.(i) <- a
      | None ->
          slots.(i) <- 0;
          incr failures
    done;
    for i = batch - 1 downto 0 do
      if slots.(i) <> 0 then
        Kmem.free k ~addr:slots.(i) ~bytes:sizes.(i mod 3)
    done
  done;
  !failures

let test_full_reap_returns_all () =
  let m, k = Util.kmem () in
  Pressure.enable k;
  Util.on_cpu m (fun () ->
      let live =
        List.init 120 (fun i ->
            (Kmem.alloc k ~bytes:sizes.(i mod 3), sizes.(i mod 3)))
      in
      List.iter (fun (a, bytes) -> Kmem.free k ~addr:a ~bytes) live;
      let reclaimed = Pressure.reap k ~full:true in
      Alcotest.(check bool) "full reap reclaims pages" true (reclaimed > 0));
  Alcotest.(check int) "every drainable page returned to the VM system" 0
    (Kmem.granted_pages_oracle k)

let test_light_reap_keeps_warmth () =
  (* A light reap flushes only the reserve halves and trims the global
     layer; the warm main freelists survive, so the very next allocation
     is still a fast-path hit. *)
  let m, k = Util.kmem () in
  Pressure.enable k;
  Util.on_cpu m (fun () ->
      let live = List.init 60 (fun _ -> Kmem.alloc k ~bytes:256) in
      List.iter (fun a -> Kmem.free k ~addr:a ~bytes:256) live;
      ignore (Pressure.reap k ~full:false);
      let before = Sim.Machine.retired m ~cpu:0 in
      let a = Kmem.alloc k ~bytes:256 in
      let cost = Sim.Machine.retired m ~cpu:0 - before in
      Alcotest.(check bool) "allocated" true (a <> 0);
      Alcotest.(check int) "standard alloc still warm after light reap" 35
        cost;
      Kmem.free k ~addr:a ~bytes:256)

let test_retries_rescue_all_allocations () =
  (* At a 50 % injected denial rate the bounded reap-and-retry path must
     rescue every allocation: zero permanent failures, and the stats
     must show both retries and reap-returned pages. *)
  let m, k = Util.kmem () in
  Pressure.enable k;
  Sim.Vmsys.set_fault_rate (Kmem.vmsys k) ~seed:7 0.5;
  let failures = Util.on_cpu m (fun () -> churn ~rounds:15 k) in
  let st = Kmem.stats k in
  Alcotest.(check int) "zero permanent failures" 0 failures;
  Alcotest.(check bool) "some allocations needed the retry path" true
    (st.Kstats.pressure_retries > 0);
  Alcotest.(check bool) "reaps returned pages" true (st.Kstats.reap_pages > 0);
  Alcotest.(check int) "no allocation degraded to failure" 0
    st.Kstats.pressure_failures

let test_targets_shrink_then_converge () =
  (* Sustained denial shrinks the adaptive bounds; once the pressure
     ends, the additive recovery must walk every class all the way back
     to the Params defaults. *)
  let m, k = Util.kmem () in
  Pressure.enable k;
  let vm = Kmem.vmsys k in
  Util.on_cpu m (fun () ->
      Sim.Vmsys.set_fault_rate vm ~seed:7 0.6;
      ignore (churn ~rounds:20 k);
      Alcotest.(check bool) "bounds shrank under sustained denial" true
        ((Kmem.stats k).Kstats.target_shrinks > 0);
      Alcotest.(check bool) "not at defaults while under pressure" false
        (Pressure.at_defaults k);
      Sim.Vmsys.set_fault_rate vm 0.;
      let r = ref 0 in
      while (not (Pressure.at_defaults k)) && !r < 400 do
        incr r;
        ignore (churn ~rounds:1 k)
      done);
  Alcotest.(check bool) "converged back to the Params defaults" true
    (Pressure.at_defaults k);
  Alcotest.(check bool) "recovery used additive grow steps" true
    ((Kmem.stats k).Kstats.target_grows > 0)

let test_disable_restores_defaults () =
  let m, k = Util.kmem () in
  Pressure.enable k;
  Util.on_cpu m (fun () ->
      Sim.Vmsys.set_fault_rate (Kmem.vmsys k) ~seed:3 0.5;
      ignore (churn ~rounds:10 k));
  Pressure.disable k;
  Alcotest.(check bool) "disabled" false (Pressure.enabled k);
  Alcotest.(check bool) "bounds restored on disable" true
    (Pressure.at_defaults k)

let test_debug_poison_survives_pressure () =
  (* Under the debug kernel every allocation verifies the free-time
     poison, so a block lost, duplicated or corrupted by the reap paths
     raises Corruption.  After the pressured churn, a full reap must
     account for every page, and a fresh sweep re-checks every block. *)
  let m = Util.machine () in
  let params = Params.make ~vmblk_pages:16 ~debug:true () in
  let k = Kmem.create m ~params () in
  Pressure.enable k;
  Util.on_cpu m (fun () ->
      Sim.Vmsys.set_fault_rate (Kmem.vmsys k) ~seed:5 0.3;
      ignore (churn ~rounds:10 k);
      Sim.Vmsys.set_fault_rate (Kmem.vmsys k) 0.;
      ignore (Pressure.reap k ~full:true);
      let sweep = List.init 200 (fun _ -> Kmem.alloc k ~bytes:64) in
      List.iter (fun a -> Kmem.free k ~addr:a ~bytes:64) sweep;
      ignore (Pressure.reap k ~full:true));
  Alcotest.(check int) "no page stranded, no block lost" 0
    (Kmem.granted_pages_oracle k)

(* One pressured run, reduced to everything observable: cycle count,
   failures, and the pressure statistics. *)
let pressured_run ?recorder () =
  (match recorder with
  | Some r -> Flightrec.Recorder.install r
  | None -> Flightrec.Recorder.uninstall ());
  Fun.protect ~finally:Flightrec.Recorder.uninstall (fun () ->
      let m, k = Util.kmem () in
      Pressure.enable k;
      Sim.Vmsys.set_fault_rate (Kmem.vmsys k) ~seed:11 0.3;
      let failures = Util.on_cpu m (fun () -> churn ~rounds:15 k) in
      let st = Kmem.stats k in
      ( Sim.Machine.elapsed m,
        failures,
        st.Kstats.reaps,
        st.Kstats.reap_pages,
        st.Kstats.pressure_retries,
        st.Kstats.target_shrinks,
        st.Kstats.target_grows ))

let test_deterministic_under_fixed_seed () =
  let a = pressured_run () in
  let b = pressured_run () in
  Alcotest.(check bool) "identical cycles and pressure stats" true (a = b)

let test_bit_identical_with_recorder () =
  (* Recording is host-side: a pressured run with the flight recorder
     installed retires exactly the same cycles as one without. *)
  let bare = pressured_run () in
  let r = Flightrec.Recorder.create ~ncpus:4 () in
  let recorded = pressured_run ~recorder:r () in
  Alcotest.(check bool) "recorder changes nothing simulated" true
    (bare = recorded);
  Alcotest.(check bool) "pressure events were recorded" true
    (Flightrec.Recorder.recorded r > 0)

let suite =
  [
    Alcotest.test_case "full reap returns every drainable page" `Quick
      test_full_reap_returns_all;
    Alcotest.test_case "light reap keeps the fast path warm" `Quick
      test_light_reap_keeps_warmth;
    Alcotest.test_case "retry-with-reap rescues all allocations" `Quick
      test_retries_rescue_all_allocations;
    Alcotest.test_case "targets shrink then converge to defaults" `Quick
      test_targets_shrink_then_converge;
    Alcotest.test_case "disable restores the default bounds" `Quick
      test_disable_restores_defaults;
    Alcotest.test_case "debug poison survives pressured churn" `Quick
      test_debug_poison_survives_pressure;
    Alcotest.test_case "deterministic under a fixed seed" `Quick
      test_deterministic_under_fixed_seed;
    Alcotest.test_case "bit-identical with the recorder on" `Quick
      test_bit_identical_with_recorder;
  ]
