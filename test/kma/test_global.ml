open Kma

(* Drive the global layer directly.  Size class 4 = 256-byte blocks,
   target 10, gbltarget 15 in the default parameters. *)

let si = 4
let target = 10
let gbltarget = 15

let fixture () = Util.kmem ()

(* Build a target-sized list by pulling blocks from the page layer. *)
let make_list ctx ~n =
  let head, got = Pagepool.get_blocks ctx ~si ~want:n in
  assert (got = n);
  (head, got)

let test_get_refills_from_pagepool () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let head, count = Util.on_cpu m (fun () -> Global.get_list ctx ~si) in
  Alcotest.(check int) "full list" target count;
  Alcotest.(check bool) "head" true (head <> 0);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "one refill" 1 st.Kstats.gbl_get_misses;
  (* Refill hysteresis: gbltarget lists fetched, one handed out. *)
  Alcotest.(check int) "hysteresis stock" (gbltarget - 1)
    (Global.nlists_oracle ctx ~si)

let test_get_then_gets_are_hits () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      for _ = 1 to gbltarget do
        ignore (Global.get_list ctx ~si)
      done);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "gets" gbltarget st.Kstats.gbl_gets;
  Alcotest.(check int) "only one miss" 1 st.Kstats.gbl_get_misses

let test_put_then_get_roundtrip () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let same =
    Util.on_cpu m (fun () ->
        let head, count = make_list ctx ~n:target in
        Global.put_list ctx ~si ~head ~count;
        let head', count' = Global.get_list ctx ~si in
        head = head' && count = count')
  in
  Alcotest.(check bool) "LIFO list reuse" true same

let test_overflow_drains () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      (* Stuff 2*gbltarget lists in: the last put triggers a drain of
         gbltarget lists down to the page layer. *)
      for _ = 1 to 2 * gbltarget do
        let head, count = make_list ctx ~n:target in
        Global.put_list ctx ~si ~head ~count
      done);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "one drain" 1 st.Kstats.gbl_put_misses;
  Alcotest.(check int) "stock back to gbltarget" gbltarget
    (Global.nlists_oracle ctx ~si);
  Alcotest.(check bool) "blocks examined by page layer" true
    (st.Kstats.page_block_puts >= gbltarget * target)

let test_put_partial_regroups () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      (* 7 + 7 blocks of odd-sized returns: one full list regroups, 4
         blocks stay on the bucket. *)
      let h1, c1 = make_list ctx ~n:7 in
      Global.put_partial ctx ~si ~head:h1 ~count:c1;
      Alcotest.(check int) "bucketed" 7 (Global.bucket_count_oracle ctx ~si);
      Alcotest.(check int) "no lists yet" 0 (Global.nlists_oracle ctx ~si);
      let h2, c2 = make_list ctx ~n:7 in
      Global.put_partial ctx ~si ~head:h2 ~count:c2);
  Alcotest.(check int) "remainder on bucket" 4
    (Global.bucket_count_oracle ctx ~si);
  Alcotest.(check int) "one regrouped list" 1 (Global.nlists_oracle ctx ~si);
  Alcotest.(check int) "nothing lost" 14 (Global.total_blocks_oracle ctx ~si)

let test_bucket_feeds_get () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let count =
    Util.on_cpu m (fun () ->
        let h, c = make_list ctx ~n:4 in
        Global.put_partial ctx ~si ~head:h ~count:c;
        snd (Global.get_list ctx ~si))
  in
  (* The bucket's 4 blocks satisfy the get without a refill. *)
  Alcotest.(check int) "short list from bucket" 4 count;
  Alcotest.(check int) "no refill" 0
    (Kmem.stats k).Kstats.sizes.(si).Kstats.gbl_get_misses

let test_drain_all () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      for _ = 1 to 3 do
        let head, count = make_list ctx ~n:target in
        Global.put_list ctx ~si ~head ~count
      done;
      let h, c = make_list ctx ~n:5 in
      Global.put_partial ctx ~si ~head:h ~count:c;
      Global.drain_all ctx ~si);
  Alcotest.(check int) "empty" 0 (Global.total_blocks_oracle ctx ~si);
  Alcotest.(check int) "all physical returned" 0
    (Kmem.granted_pages_oracle k)

let test_exhaustion_returns_zero () =
  let m, k = Util.kmem ~phys_pages:1 () in
  let ctx = Util.ctx_of k in
  (* 256B: one page = 16 blocks = one full list of 10 plus 6 on the
     bucket; subsequent gets return short lists and then (0,0). *)
  let counts =
    Util.on_cpu m (fun () ->
        List.init 4 (fun _ -> snd (Global.get_list ctx ~si)))
  in
  Alcotest.(check (list int)) "drains then empty" [ 10; 6; 0; 0 ] counts

(* Property: the miss-rate hysteresis bound — in any mix of puts and
   gets, coalesce-layer interactions are at most 1 per gbltarget
   global-layer operations (plus one warm-up refill). *)
let prop_hysteresis_bound =
  QCheck.Test.make ~name:"global layer miss rate bounded by 1/gbltarget"
    ~count:30
    QCheck.(small_list bool)
    (fun ops ->
      let m, k = fixture () in
      let ctx = Util.ctx_of k in
      Util.on_cpu m (fun () ->
          let held = ref [] in
          let do_op is_get =
            if is_get then begin
              let h, c = Global.get_list ctx ~si in
              if c = target then held := h :: !held
              else if h <> 0 then
                (* Short list: recycle through the bucket. *)
                Global.put_partial ctx ~si ~head:h ~count:c
            end
            else
              match !held with
              | h :: rest ->
                  held := rest;
                  Global.put_list ctx ~si ~head:h ~count:target
              | [] -> ()
          in
          List.iter do_op ops);
      let st = (Kmem.stats k).Kstats.sizes.(si) in
      let interactions = st.Kstats.gbl_get_misses + st.Kstats.gbl_put_misses in
      let ops_count = st.Kstats.gbl_gets + st.Kstats.gbl_puts in
      interactions <= 1 + (ops_count / gbltarget) + 1)

(* Regression: [drain] on an empty gblfree used to attempt all
   [gbltarget] pops, re-reading the empty head word each time while
   holding the per-size spinlock.  The fix stops at the first empty
   pop, so an empty drain now retires one failed pop's worth of
   instructions instead of [gbltarget] of them. *)
let test_drain_empty_stops_at_first_pop () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let ops =
    Util.on_cpu m (fun () ->
        Sim.Spinlock.with_lock ctx.Ctx.glocks.(si) (fun () ->
            let r0 = Sim.Machine.retired m ~cpu:0 in
            Global.drain ctx ~si;
            Sim.Machine.retired m ~cpu:0 - r0))
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "empty drain retired %d ops: one failed pop, not %d of them" ops
       gbltarget)
    true (ops <= 2)

let suite =
  [
    Alcotest.test_case "get refills from page layer" `Quick
      test_get_refills_from_pagepool;
    Alcotest.test_case "refill hysteresis makes later gets hits" `Quick
      test_get_then_gets_are_hits;
    Alcotest.test_case "put/get roundtrip is LIFO" `Quick
      test_put_then_get_roundtrip;
    Alcotest.test_case "overflow drains gbltarget lists" `Quick
      test_overflow_drains;
    Alcotest.test_case "put_partial regroups via bucket" `Quick
      test_put_partial_regroups;
    Alcotest.test_case "bucket feeds gets" `Quick test_bucket_feeds_get;
    Alcotest.test_case "drain_all empties the layer" `Quick test_drain_all;
    Alcotest.test_case "empty drain stops at first pop" `Quick
      test_drain_empty_stops_at_first_pop;
    Alcotest.test_case "exhaustion hands out the last blocks" `Quick
      test_exhaustion_returns_zero;
    QCheck_alcotest.to_alcotest prop_hysteresis_bound;
  ]
