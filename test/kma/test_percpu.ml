open Kma

(* Size class 4 = 256-byte blocks, target 10.  Use explicit small
   targets where the walkthrough needs them. *)

let si = 4

(* Paper Figure 2 walkthrough uses target = 3. *)
let fig2_params () =
  let targets = Array.make 9 3 in
  let gbltargets = Array.make 9 4 in
  Util.kmem ~targets ~gbltargets ()

let test_first_alloc_misses_then_hits () =
  let m, k = Util.kmem () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Percpu.alloc ctx ~si in
      Alcotest.(check bool) "allocated" true (a <> 0);
      for _ = 1 to 5 do
        let b = Percpu.alloc ctx ~si in
        Alcotest.(check bool) "allocated more" true (b <> 0)
      done);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "6 allocs" 6 st.Kstats.allocs;
  Alcotest.(check int) "one global trip" 1 st.Kstats.alloc_misses

let test_alloc_free_pairs_stay_local () =
  let m, k = Util.kmem () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Percpu.alloc ctx ~si in
      Percpu.free ctx ~si a;
      for _ = 1 to 100 do
        let b = Percpu.alloc ctx ~si in
        Percpu.free ctx ~si b
      done);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "single warm-up miss" 1 st.Kstats.alloc_misses;
  Alcotest.(check int) "no free misses" 0 st.Kstats.free_misses

let test_lifo_reuse () =
  let m, k = Util.kmem () in
  let ctx = Util.ctx_of k in
  let same =
    Util.on_cpu m (fun () ->
        let a = Percpu.alloc ctx ~si in
        Percpu.free ctx ~si a;
        let b = Percpu.alloc ctx ~si in
        a = b)
  in
  Alcotest.(check bool) "immediately reallocates the hot block" true same

(* The paper's Figure 2 narrative, with target = 3 and a cache holding
   main = 1 block, aux = 3 blocks:
   - one more block may be allocated from main, emptying it;
   - a second allocation moves aux's contents to main and uses one;
   - two more allocations empty main again;
   - the next allocation must refill from the global layer. *)
let test_figure2_walkthrough () =
  let m, k = fig2_params () in
  let ctx = Util.ctx_of k in
  let cached ~cpu = Percpu.cached_blocks_oracle ctx ~cpu ~si in
  Util.on_cpu m (fun () ->
      (* Build the Figure 2 state: fill main (3) and aux (3), then
         allocate twice so main holds 1 and aux holds 3.  Frees of 7
         blocks from a fresh cache: refill gives 3 (main 2 after the
         alloc)... construct directly instead: allocate 7 blocks, free
         7: cache then holds main=1? — deterministic but opaque.  Pin
         the exact state by allocating 6 and freeing them. *)
      let blocks = Array.init 6 (fun _ -> Percpu.alloc ctx ~si) in
      Array.iter (fun a -> Percpu.free ctx ~si a) blocks;
      (* 6 frees onto an empty cache with target 3: after 3 frees main
         is full; 4th free slides main to aux (no flush: aux empty);
         frees 4-6 fill main again.  State: main=3, aux=3. *)
      Alcotest.(check int) "cache full at 2*target" 6 (cached ~cpu:0);
      (* Allocate twice: main 3 -> 1. *)
      ignore (Percpu.alloc ctx ~si);
      ignore (Percpu.alloc ctx ~si);
      Alcotest.(check int) "figure 2 state" 4 (cached ~cpu:0);
      let misses_before =
        (Kmem.stats k).Kstats.sizes.(si).Kstats.alloc_misses
      in
      (* One more allocation comes from main. *)
      ignore (Percpu.alloc ctx ~si);
      (* Next allocation moves aux to main and uses one (main: 2). *)
      ignore (Percpu.alloc ctx ~si);
      Alcotest.(check int) "aux slid into main" 2 (cached ~cpu:0);
      (* Two more empty main. *)
      ignore (Percpu.alloc ctx ~si);
      ignore (Percpu.alloc ctx ~si);
      Alcotest.(check int) "cache empty" 0 (cached ~cpu:0);
      let misses_mid = (Kmem.stats k).Kstats.sizes.(si).Kstats.alloc_misses in
      Alcotest.(check int) "no global trips so far" misses_before misses_mid;
      (* The next allocation must go to the global layer. *)
      ignore (Percpu.alloc ctx ~si);
      Alcotest.(check int) "global refill"
        (misses_before + 1)
        (Kmem.stats k).Kstats.sizes.(si).Kstats.alloc_misses)

let test_free_flushes_in_target_groups () =
  let m, k = fig2_params () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      (* Allocate 12 then free 12: each flush hands exactly one
         target-sized (3-block) list to the global layer. *)
      let blocks = Array.init 12 (fun _ -> Percpu.alloc ctx ~si) in
      Array.iter (fun a -> Percpu.free ctx ~si a) blocks);
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  (* 12 frees, target 3: frees 1-3 fill main; 4 slides; 5-6 fill; 7
     flushes aux + slides; ... flushes at frees 7, 10. *)
  Alcotest.(check int) "two flushes" 2 st.Kstats.free_misses;
  Alcotest.(check int) "cache keeps 2*target" 6
    (Percpu.cached_blocks_oracle ctx ~cpu:0 ~si)

let test_cache_bound_invariant () =
  let m, k = Util.kmem () in
  let ctx = Util.ctx_of k in
  let target = (Kmem.params k).Params.targets.(si) in
  Util.on_cpu m (fun () ->
      let live = ref [] in
      for i = 1 to 200 do
        if i mod 3 = 0 then
          match !live with
          | a :: rest ->
              live := rest;
              Percpu.free ctx ~si a
          | [] -> ()
        else begin
          let a = Percpu.alloc ctx ~si in
          live := a :: !live
        end;
        let c = Percpu.cached_blocks_oracle ctx ~cpu:0 ~si in
        if c > 2 * target then
          Alcotest.failf "cache grew to %d blocks (target %d)" c target
      done)

let test_cross_cpu_flow_handshake () =
  (* CPU 0 allocates, CPU 1 frees — the pattern the global layer
     exists for.  CPU 1 waits on a handshake word in simulated memory
     before touching the mailbox. *)
  let m, k = Util.kmem ~ncpus:2 () in
  let ctx = Util.ctx_of k in
  let mailbox = ref [] in
  Sim.Machine.run m
    [|
      (fun _ ->
        mailbox := List.init 40 (fun _ -> Percpu.alloc ctx ~si);
        Sim.Machine.write 8 1);
      (fun _ ->
        while Sim.Machine.read 8 = 0 do
          Sim.Machine.spin_pause ()
        done;
        List.iter (fun a -> Percpu.free ctx ~si a) !mailbox);
    |];
  let st = (Kmem.stats k).Kstats.sizes.(si) in
  Alcotest.(check int) "all freed" 40 st.Kstats.frees;
  Alcotest.(check bool) "cpu1 flushed lists to global" true
    (st.Kstats.free_misses >= 2);
  (* CPU 1's cache is bounded even though it only ever freed. *)
  let target = (Kmem.params k).Params.targets.(si) in
  Alcotest.(check bool) "cpu1 cache bounded" true
    (Percpu.cached_blocks_oracle ctx ~cpu:1 ~si <= 2 * target)

let test_drain () =
  let m, k = Util.kmem () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Percpu.alloc ctx ~si in
      Percpu.free ctx ~si a;
      Percpu.drain ctx ~si);
  Alcotest.(check int) "cache empty after drain" 0
    (Percpu.cached_blocks_oracle ctx ~cpu:0 ~si);
  Alcotest.(check bool) "blocks back in global" true
    (Global.total_blocks_oracle ctx ~si > 0)

(* Property: random per-CPU alloc/free traffic never hands out the same
   block twice, and the cache bound holds throughout. *)
let prop_no_double_allocation =
  QCheck.Test.make ~name:"no block handed out twice" ~count:40
    QCheck.(small_list bool)
    (fun ops ->
      let m, k = Util.kmem () in
      let ctx = Util.ctx_of k in
      let ok = ref true in
      Util.on_cpu m (fun () ->
          let live = Hashtbl.create 64 in
          List.iter
            (fun is_alloc ->
              if is_alloc then begin
                let a = Percpu.alloc ctx ~si in
                if a = 0 || Hashtbl.mem live a then ok := false
                else Hashtbl.add live a ()
              end
              else
                let bindings = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
                match bindings with
                | a :: _ ->
                    Hashtbl.remove live a;
                    Percpu.free ctx ~si a
                | [] -> ())
            ops);
      !ok)

(* Regression: a slow-path free must hand its aux list to the global
   layer under the target in force *after* [sync_target] runs.  It
   used to compare against the target word read at entry, so an aux
   list filled under a larger, since-shrunk target matched the stale
   bound and landed on gblfree as an oversized "full" list.  The fix
   re-reads the target and routes the mismatch through the bucket. *)
let test_shrunk_target_handoff_goes_to_bucket () =
  let m, k = Util.kmem ~ncpus:1 () in
  let ctx = Util.ctx_of k in
  Pressure.enable k;
  let boot = (Kmem.params k).Params.targets.(si) in
  Alcotest.(check bool) "scenario needs target >= 3" true (boot >= 3);
  let shrunk = boot - 2 in
  Util.on_cpu m (fun () ->
      let blocks =
        Array.init ((2 * boot) + 1) (fun _ -> Kmem.alloc_class k ~si)
      in
      Array.iter
        (fun a -> Alcotest.(check bool) "warm alloc ok" true (a <> 0))
        blocks;
      (* Start the cache from empty so the frees below land exactly
         boot blocks in main and boot in aux. *)
      Percpu.drain ctx ~si;
      for i = 0 to (2 * boot) - 1 do
        Percpu.free ctx ~si blocks.(i)
      done;
      let (_, mc), (_, ac), _ = Percpu.cache_oracle ctx ~cpu:0 ~si in
      Alcotest.(check (pair int int)) "main and aux boot-target-sized"
        (boot, boot) (mc, ac);
      (* Empty the global layer (warm-up refills and the drain stocked
         it) so the hand-off below is the only traffic. *)
      Global.drain_all ctx ~si;
      Alcotest.(check int) "gblfree emptied before the hand-off" 0
        (List.length (Global.lists_oracle ctx ~si));
      (* Pressure shrinks the class target; the cache still holds a
         boot-sized aux filled under the old bound.  The next slow-path
         free syncs the target and must notice the mismatch. *)
      ctx.Ctx.pressure.Ctx.desired_targets.(si) <- shrunk;
      Percpu.free ctx ~si blocks.(2 * boot));
  let lists = Global.lists_oracle ctx ~si in
  Alcotest.(check bool) "no stale-sized list on gblfree" true
    (List.for_all (fun (_, c) -> c = shrunk) lists);
  let in_lists = List.fold_left (fun acc (_, c) -> acc + c) 0 lists in
  Alcotest.(check int) "handed-off blocks conserved (lists + bucket)" boot
    (in_lists + Global.bucket_count_oracle ctx ~si)

let suite =
  [
    Alcotest.test_case "first alloc misses, rest hit" `Quick
      test_first_alloc_misses_then_hits;
    Alcotest.test_case "alloc/free pairs stay CPU-local" `Quick
      test_alloc_free_pairs_stay_local;
    Alcotest.test_case "LIFO reuse of the hot block" `Quick test_lifo_reuse;
    Alcotest.test_case "paper Figure 2 walkthrough" `Quick
      test_figure2_walkthrough;
    Alcotest.test_case "frees flush in target-sized groups" `Quick
      test_free_flushes_in_target_groups;
    Alcotest.test_case "cache bounded by 2*target" `Quick
      test_cache_bound_invariant;
    Alcotest.test_case "cross-CPU alloc/free flows via global" `Quick
      test_cross_cpu_flow_handshake;
    Alcotest.test_case "drain empties the cache" `Quick test_drain;
    Alcotest.test_case "shrunk-target hand-off goes to the bucket" `Quick
      test_shrunk_target_handoff_goes_to_bucket;
    QCheck_alcotest.to_alcotest prop_no_double_allocation;
  ]
