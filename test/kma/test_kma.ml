let () =
  Alcotest.run "kma"
    [
      ("params", Test_params.suite);
      ("layout", Test_layout.suite);
      ("freelist", Test_freelist.suite);
      ("vmblk", Test_vmblk.suite);
      ("pagepool", Test_pagepool.suite);
      ("global", Test_global.suite);
      ("percpu", Test_percpu.suite);
      ("kmem", Test_kmem.suite);
      ("debug", Test_debug.suite);
      ("objcache", Test_objcache.suite);
      ("kstats", Test_kstats.suite);
      ("pressure", Test_pressure.suite);
    ]
