(* Seeded-violation tests: deliberately wrong synchronization inside
   the real simulator must be caught through the production hooks
   (Sim.Spinlock, Sim.Vmsys, Kma.Percpu) — not by driving Lockcheck
   directly.  Each test checks the report names the offending locks or
   CPUs.  The checker runs in record mode (abort:false) so the runs
   complete and we can inspect everything it found. *)

open Sim

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let with_checker f =
  Lockcheck.enable ~abort:false ();
  Fun.protect ~finally:Lockcheck.disable f

let has_violation rule sub =
  List.exists
    (fun (r, msg) -> r = rule && contains msg sub)
    (Lockcheck.violations ())

let machine ~ncpus () =
  Machine.create (Config.make ~ncpus ~cache_lines:0 ~memory_words:65536 ())

(* The lockdep value proposition: the two runs below never deadlock —
   each takes both locks alone — yet the order cycle is detected,
   because order is a property of the graph, not of an unlucky
   interleaving. *)
let test_abba_order_cycle () =
  with_checker (fun () ->
      let m = machine ~ncpus:1 () in
      let mem = Machine.memory m in
      let a = Spinlock.init mem 64 and b = Spinlock.init mem 80 in
      Lockcheck.register_lock ~addr:64 ~name:"lockA" ();
      Lockcheck.register_lock ~addr:80 ~name:"lockB" ();
      Machine.run m
        [|
          (fun _ ->
            Spinlock.with_lock a (fun () ->
                Spinlock.with_lock b (fun () -> Machine.work 5)));
        |];
      Alcotest.(check int) "A-then-B alone is clean" 0
        (Lockcheck.violation_count ());
      Machine.run m
        [|
          (fun _ ->
            Spinlock.with_lock b (fun () ->
                Spinlock.with_lock a (fun () -> Machine.work 5)));
        |];
      Alcotest.(check bool) "B-then-A closes the ABBA cycle" true
        (has_violation Lockcheck.Lock_order "closes order cycle");
      Alcotest.(check bool) "report names lockA" true
        (has_violation Lockcheck.Lock_order "lockA");
      Alcotest.(check bool) "report names lockB" true
        (has_violation Lockcheck.Lock_order "lockB"))

let test_irq_enabled_percpu_access () =
  with_checker (fun () ->
      let m = machine ~ncpus:1 () in
      Machine.run m
        [|
          (fun _ ->
            (* Disciplined access first: irqs off, own state. *)
            Machine.irq_disable ();
            Kma.Percpu.lockcheck_probe ~owner:0;
            Machine.irq_enable ();
            (* Seeded bug: touch per-CPU state with interrupts enabled. *)
            Kma.Percpu.lockcheck_probe ~owner:0);
        |];
      Alcotest.(check bool) "interrupts-enabled access caught" true
        (has_violation Lockcheck.Irq_discipline "interrupts enabled");
      Alcotest.(check int) "exactly one violation" 1
        (Lockcheck.violation_count ()))

let test_cross_cpu_percpu_access () =
  with_checker (fun () ->
      let m = machine ~ncpus:2 () in
      Machine.run m
        [|
          (fun _ ->
            (* Seeded bug: CPU 0 touches CPU 1's cache state (hard
               error even with interrupts off). *)
            Machine.irq_disable ();
            Kma.Percpu.lockcheck_probe ~owner:1;
            Machine.irq_enable ());
          (fun _ -> Machine.work 1);
        |];
      Alcotest.(check bool) "cross-CPU access caught" true
        (has_violation Lockcheck.Irq_discipline
           "cpu 0 touched per-CPU cache state owned by cpu 1"))

let test_lock_held_across_vm_call () =
  with_checker (fun () ->
      let m = machine ~ncpus:1 () in
      let vmsys = Vmsys.create ~total_pages:8 ~grant_cost:5 ~reclaim_cost:5 in
      let l = Spinlock.init (Machine.memory m) 64 in
      Lockcheck.register_lock ~addr:64 ~name:"rawlock" ();
      Machine.run m
        [|
          (fun _ ->
            (* Seeded bug: enter the VM system holding a lock whose
               class is not vm_safe. *)
            Spinlock.with_lock l (fun () -> ignore (Vmsys.grant vmsys)));
        |];
      Alcotest.(check bool) "vm-hold caught, names the lock" true
        (has_violation Lockcheck.Vm_hold "rawlock");
      Alcotest.(check bool) "names the entry point" true
        (has_violation Lockcheck.Vm_hold "Vmsys.grant"))

(* The production allocator, run clean: the checker must reconstruct
   the documented gbl -> pagepool -> vmblk order and find nothing. *)
let test_clean_kmem_run () =
  with_checker (fun () ->
      (* kmem needs room for a full vmblk; the seeded tests above get
         by with the small default machine. *)
      let m =
        Machine.create
          (Config.make ~ncpus:2 ~cache_lines:0
             ~memory_words:(2 * 1024 * 1024) ())
      in
      let kmem = Kma.Kmem.create m () in
      Machine.run_symmetric m ~ncpus:2 (fun _ ->
          let slots = Array.make 64 0 in
          for round = 1 to 5 do
            for i = 0 to 63 do
              slots.(i) <- Kma.Kmem.alloc kmem ~bytes:(64 * ((i mod 3) + 1))
            done;
            for i = 63 downto 0 do
              Kma.Kmem.free kmem ~addr:slots.(i)
                ~bytes:(64 * ((i mod 3) + 1))
            done;
            ignore round
          done);
      Alcotest.(check int) "no violations" 0 (Lockcheck.violation_count ());
      let edges = Lockcheck.order_edges () in
      Alcotest.(check bool) "observed gbl -> pagepool" true
        (List.mem ("kma.gbl", "kma.pagepool") edges);
      Alcotest.(check bool) "observed pagepool -> vmblk" true
        (List.mem ("kma.pagepool", "kma.vmblk") edges);
      Alcotest.(check bool) "no reversed edge" true
        (not (List.mem ("kma.vmblk", "kma.gbl") edges));
      Alcotest.(check bool) "irq discipline was exercised" true
        (Lockcheck.check_count Lockcheck.Irq_discipline > 0);
      Alcotest.(check bool) "vm entries were checked" true
        (Lockcheck.check_count Lockcheck.Vm_hold > 0))

let suite =
  [
    Alcotest.test_case "seeded ABBA lock order is caught" `Quick
      test_abba_order_cycle;
    Alcotest.test_case "seeded interrupts-enabled access is caught" `Quick
      test_irq_enabled_percpu_access;
    Alcotest.test_case "seeded cross-CPU access is caught" `Quick
      test_cross_cpu_percpu_access;
    Alcotest.test_case "seeded lock-across-Vmsys is caught" `Quick
      test_lock_held_across_vm_call;
    Alcotest.test_case "clean kmem run: right order, zero violations"
      `Quick test_clean_kmem_run;
  ]
