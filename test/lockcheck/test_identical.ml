(* The checker's zero-perturbation contract, at experiment scale: E1
   (the Analysis access-cost profile) and E8 (the pressure sweep) must
   produce bit-identical results — every simulated cycle count, rate
   and counter — with the checker on or off.  Both experiments are
   deterministic, so plain structural equality of their result records
   is the strongest possible check.  Run in abort mode: a violation in
   the production allocator would fail the test loudly. *)

let with_checker_if enabled f =
  if not enabled then f ()
  else begin
    Lockcheck.enable ~abort:true ();
    Fun.protect ~finally:Lockcheck.disable f
  end

let analysis_run ~check =
  with_checker_if check (fun () -> Experiments.Analysis.run ~samples:60 ())

let test_e1_bit_identical () =
  let bare = analysis_run ~check:false in
  let checked = analysis_run ~check:true in
  Alcotest.(check bool) "E1 profiles identical with lockcheck on" true
    (bare = checked)

let pressure_run ~check =
  with_checker_if check (fun () ->
      Experiments.Pressure.run ~ncpus:2 ~rounds:6 ~batch:40
        ~rates:[ 0.0; 0.2 ] ~seed:42 ())

let test_e8_bit_identical () =
  let bare = pressure_run ~check:false in
  let checked = pressure_run ~check:true in
  Alcotest.(check bool) "E8 results identical with lockcheck on" true
    (bare = checked)

(* ... and the checker did actually watch those runs: re-run E8 in
   record mode and confirm the hooks fired. *)
let test_checker_saw_the_run () =
  Lockcheck.enable ~abort:true ();
  Fun.protect ~finally:Lockcheck.disable (fun () ->
      ignore
        (Experiments.Pressure.run ~ncpus:2 ~rounds:3 ~batch:20 ~rates:[ 0.0 ]
           ~seed:42 ());
      Alcotest.(check bool) "locks were tracked" true
        (Lockcheck.check_count Lockcheck.Lock_order > 0);
      Alcotest.(check bool) "per-CPU accesses were checked" true
        (Lockcheck.check_count Lockcheck.Irq_discipline > 0))

let suite =
  [
    Alcotest.test_case "E1 simulated results bit-identical" `Quick
      test_e1_bit_identical;
    Alcotest.test_case "E8 simulated results bit-identical" `Quick
      test_e8_bit_identical;
    Alcotest.test_case "hooks actually fired during E8" `Quick
      test_checker_saw_the_run;
  ]
