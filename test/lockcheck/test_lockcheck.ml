let () =
  Alcotest.run "lockcheck"
    [
      ("unit", Test_unit.suite);
      ("seeded", Test_seeded.suite);
      ("identical", Test_identical.suite);
    ]
