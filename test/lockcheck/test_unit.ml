(* Host-side unit tests of the Lockcheck engine: the order graph, the
   recursion/same-class rules, the vm_safe whitelist, the interrupt
   discipline, abort-vs-record modes and the text report.  No simulator
   involved — hooks are driven directly with explicit cpu/time. *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let with_checker ?(abort = false) f =
  Lockcheck.enable ~abort ();
  Fun.protect ~finally:Lockcheck.disable f

let has_violation rule sub =
  List.exists
    (fun (r, msg) -> r = rule && contains msg sub)
    (Lockcheck.violations ())

let test_order_edges_and_cycle () =
  with_checker (fun () ->
      Lockcheck.register_lock ~addr:1 ~name:"A" ();
      Lockcheck.register_lock ~addr:2 ~name:"B" ();
      (* Legal order: A then B. *)
      Lockcheck.acquire ~cpu:0 ~time:10 ~addr:1;
      Lockcheck.acquire ~cpu:0 ~time:20 ~addr:2;
      Lockcheck.release ~cpu:0 ~time:30 ~addr:2;
      Lockcheck.release ~cpu:0 ~time:40 ~addr:1;
      Alcotest.(check (list (pair string string)))
        "one edge" [ ("A", "B") ] (Lockcheck.order_edges ());
      Alcotest.(check int) "no violations yet" 0 (Lockcheck.violation_count ());
      (* Opposite order closes the cycle — caught at acquire time. *)
      Lockcheck.acquire ~cpu:1 ~time:50 ~addr:2;
      Lockcheck.acquire ~cpu:1 ~time:60 ~addr:1;
      Alcotest.(check int) "cycle recorded" 1 (Lockcheck.violation_count ());
      Alcotest.(check bool) "names the locks and the cycle" true
        (has_violation Lockcheck.Lock_order "closes order cycle");
      Alcotest.(check bool) "mentions lock A" true
        (has_violation Lockcheck.Lock_order "A");
      Alcotest.(check int) "max depth 2" 2 (Lockcheck.max_hold_depth ()))

let test_recursive_acquire () =
  with_checker (fun () ->
      Lockcheck.register_lock ~addr:7 ~name:"L" ();
      Lockcheck.acquire ~cpu:0 ~time:1 ~addr:7;
      Lockcheck.acquire ~cpu:0 ~time:2 ~addr:7;
      Alcotest.(check bool) "recursion caught" true
        (has_violation Lockcheck.Lock_order "recursive"))

let test_same_class_nesting () =
  with_checker (fun () ->
      Lockcheck.register_lock ~addr:1 ~name:"g1" ~cls:"gbl" ();
      Lockcheck.register_lock ~addr:2 ~name:"g2" ~cls:"gbl" ();
      Lockcheck.acquire ~cpu:0 ~time:1 ~addr:1;
      Lockcheck.acquire ~cpu:0 ~time:2 ~addr:2;
      Alcotest.(check bool) "same-class nesting caught" true
        (has_violation Lockcheck.Lock_order "same class"))

let test_vm_safe_whitelist () =
  with_checker (fun () ->
      Lockcheck.register_lock ~addr:1 ~name:"safe" ~vm_safe:true ();
      Lockcheck.acquire ~cpu:0 ~time:1 ~addr:1;
      Lockcheck.vm_call ~cpu:0 ~time:2 ~what:"grant";
      Alcotest.(check int) "vm_safe lock tolerated" 0
        (Lockcheck.violation_count ());
      (* An unregistered lock defaults to not-vm_safe. *)
      Lockcheck.acquire ~cpu:0 ~time:3 ~addr:99;
      Lockcheck.vm_call ~cpu:0 ~time:4 ~what:"grant";
      Alcotest.(check bool) "unregistered lock flagged" true
        (has_violation Lockcheck.Vm_hold "lock@99");
      Alcotest.(check int) "vm checks counted" 2
        (Lockcheck.check_count Lockcheck.Vm_hold))

let test_irq_discipline () =
  with_checker (fun () ->
      Lockcheck.percpu_access ~cpu:0 ~time:1 ~owner:0 ~irq_off:true;
      Alcotest.(check int) "disciplined access ok" 0
        (Lockcheck.violation_count ());
      Lockcheck.percpu_access ~cpu:0 ~time:2 ~owner:0 ~irq_off:false;
      Alcotest.(check bool) "interrupts-enabled access caught" true
        (has_violation Lockcheck.Irq_discipline "interrupts enabled");
      Lockcheck.percpu_access ~cpu:0 ~time:3 ~owner:1 ~irq_off:true;
      Alcotest.(check bool) "cross-CPU access caught" true
        (has_violation Lockcheck.Irq_discipline "owned by cpu 1"))

let test_abort_mode_raises () =
  with_checker ~abort:true (fun () ->
      Lockcheck.acquire ~cpu:0 ~time:1 ~addr:5;
      Alcotest.check_raises "violation raises"
        (Lockcheck.Violation
           "lockcheck: lock-order violation (cpu 0, t=2): recursive \
            acquisition of lock@5 (first taken t=1)")
        (fun () -> Lockcheck.acquire ~cpu:0 ~time:2 ~addr:5))

let test_release_unknown_ignored () =
  with_checker (fun () ->
      Lockcheck.release ~cpu:3 ~time:1 ~addr:42;
      Alcotest.(check int) "no violation" 0 (Lockcheck.violation_count ()))

let test_flightrec_event_emitted () =
  let fr = Flightrec.Recorder.create ~ncpus:1 () in
  Flightrec.Recorder.install fr;
  Fun.protect
    ~finally:(fun () -> Flightrec.Recorder.uninstall ())
    (fun () ->
      with_checker (fun () ->
          Lockcheck.percpu_access ~cpu:0 ~time:5 ~owner:0 ~irq_off:false));
  let kinds =
    List.map
      (fun (e : Flightrec.Event.t) -> Flightrec.Event.kind_name e.kind)
      (Flightrec.Recorder.events fr)
  in
  Alcotest.(check bool) "violation event in the trace" true
    (List.mem "lockcheck-violation" kinds)

let test_report_sections () =
  with_checker (fun () ->
      Lockcheck.register_lock ~addr:1 ~name:"A" ();
      Lockcheck.register_lock ~addr:2 ~name:"B" ();
      Lockcheck.acquire ~cpu:0 ~time:1 ~addr:1;
      Lockcheck.acquire ~cpu:0 ~time:2 ~addr:2;
      Lockcheck.vm_call ~cpu:0 ~time:3 ~what:"grant";
      let s = Lockcheck.report () in
      List.iter
        (fun sub -> Alcotest.(check bool) sub true (contains s sub))
        [
          "== lockcheck report ==";
          "-- locks seen --";
          "-- lock-order edges --";
          "[A] -> [B]";
          "max hold depth        2";
          "-- violations:";
        ])

let test_disabled_hooks_are_noops () =
  Lockcheck.disable ();
  Alcotest.(check bool) "off" false (Lockcheck.on ());
  Lockcheck.acquire ~cpu:0 ~time:1 ~addr:1;
  Lockcheck.percpu_access ~cpu:0 ~time:1 ~owner:9 ~irq_off:false;
  Lockcheck.vm_call ~cpu:0 ~time:1 ~what:"grant";
  Alcotest.(check int) "nothing recorded" 0 (Lockcheck.violation_count ());
  Alcotest.(check bool) "report says disabled" true
    (contains (Lockcheck.report ()) "disabled")

let suite =
  [
    Alcotest.test_case "order edges recorded; opposite order = cycle" `Quick
      test_order_edges_and_cycle;
    Alcotest.test_case "recursive acquisition caught" `Quick
      test_recursive_acquire;
    Alcotest.test_case "same-class nesting caught" `Quick
      test_same_class_nesting;
    Alcotest.test_case "vm_safe whitelist honoured" `Quick
      test_vm_safe_whitelist;
    Alcotest.test_case "interrupt discipline enforced" `Quick
      test_irq_discipline;
    Alcotest.test_case "abort mode raises Violation" `Quick
      test_abort_mode_raises;
    Alcotest.test_case "release of unseen lock ignored" `Quick
      test_release_unknown_ignored;
    Alcotest.test_case "violations reach the flight recorder" `Quick
      test_flightrec_event_emitted;
    Alcotest.test_case "report renders every section" `Quick
      test_report_sections;
    Alcotest.test_case "hooks are no-ops while disabled" `Quick
      test_disabled_hooks_are_noops;
  ]
