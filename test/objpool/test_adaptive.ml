open Objpool

(* Edge cases and the adaptive-geometry discipline: depot-overflow
   drops, cross-domain reachability after flush_local, reset raising
   mid-release, degenerate target:1 geometry, racing Pstats readers,
   refill, and the deterministic adaptation trajectory via adapt_now. *)

type obj = { id : int; mutable poison : bool }

let make_pool ?(target = 4) ?(depot_batches = 8) ?mode ?reset () =
  let next = Atomic.make 0 in
  Pool.create
    ~ctor:(fun () -> { id = Atomic.fetch_and_add next 1; poison = false })
    ?reset ~target ~depot_batches ?mode ()

(* --- satellite: Pstats is safe to read while writers race --- *)

let test_pstats_racing_readers () =
  let s = Pstats.create () in
  let per_domain = 50_000 in
  let writer () =
    for _ = 1 to per_domain do
      Pstats.incr_alloc s;
      Pstats.incr_free s;
      Pstats.note_depot_acquire s ~contended:false
    done
  in
  let ds = List.init 2 (fun _ -> Domain.spawn writer) in
  (* Race reads against the writers: every read must be a valid count,
     and each counter must be monotone across successive reads. *)
  let last = ref 0 in
  for _ = 1 to 2_000 do
    let snap = Pstats.read s in
    let a = snap.Pstats.s_allocs in
    if a < !last then Alcotest.failf "allocs went backwards: %d < %d" a !last;
    last := a;
    if snap.Pstats.s_frees < 0 then Alcotest.fail "negative frees"
  done;
  List.iter Domain.join ds;
  let snap = Pstats.read s in
  Alcotest.(check int) "exact allocs" (2 * per_domain) snap.Pstats.s_allocs;
  Alcotest.(check int) "exact frees" (2 * per_domain) snap.Pstats.s_frees;
  Alcotest.(check int)
    "exact acquires" (2 * per_domain) snap.Pstats.s_depot_acquires;
  Alcotest.(check int) "no contention recorded" 0 snap.Pstats.s_depot_contended

(* --- satellite: depot overflow drops to the GC, pool stays usable --- *)

let test_depot_overflow_drops () =
  let p = make_pool ~target:2 ~depot_batches:1 () in
  let live = List.init 40 (fun _ -> Pool.alloc p) in
  List.iter (Pool.release p) live;
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check bool) "drops happened" true (s.Pstats.s_drops > 0);
  Alcotest.(check int) "all frees counted" 40 s.Pstats.s_frees;
  (* Capacity bounds what survives: one depot batch + the magazine. *)
  Alcotest.(check bool) "depot respects bound" true (Pool.depot_batches p <= 1);
  let o = Pool.alloc p in
  Alcotest.(check bool) "pool still serves" true (o.id >= 0);
  Pool.release p o

(* --- satellite: flush_local makes a domain's stock reachable --- *)

let test_flush_local_cross_domain () =
  let p = make_pool ~target:4 ~depot_batches:8 () in
  let d =
    Domain.spawn (fun () ->
        let objs = List.init 8 (fun _ -> Pool.alloc p) in
        List.iter (Pool.release p) objs;
        Pool.flush_local p)
  in
  Domain.join d;
  let created = Pstats.creates (Pool.stats p) in
  (* Everything the worker built is now in the depot: this domain can
     allocate without paying constructor cost. *)
  let mine = List.init 8 (fun _ -> Pool.alloc p) in
  Alcotest.(check int)
    "no new constructions" created
    (Pstats.creates (Pool.stats p));
  List.iter (Pool.release p) mine

(* --- satellite: reset raising mid-release abandons the object --- *)

let test_reset_raising () =
  let p =
    make_pool
      ~reset:(fun o -> if o.poison then failwith "poisoned reset")
      ()
  in
  let a = Pool.alloc p in
  a.poison <- true;
  (match Pool.release p a with
  | () -> Alcotest.fail "expected the reset exception to propagate"
  | exception Failure _ -> ());
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check int) "abandoned, not freed" 0 s.Pstats.s_frees;
  (* The poisoned object re-entered nothing: the next alloc builds a
     fresh one, and normal traffic still flows. *)
  let b = Pool.alloc p in
  Alcotest.(check bool) "fresh object" true (b.id <> a.id);
  Pool.release p b;
  Alcotest.(check int) "pool usable after" 1
    (Pstats.frees (Pool.stats p))

(* --- satellite: target:1 (no batching) still round-trips --- *)

let test_target_one () =
  let p = make_pool ~target:1 ~depot_batches:2 () in
  for _ = 1 to 10 do
    let o = Pool.alloc p in
    Pool.release p o
  done;
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check int) "balanced" s.Pstats.s_allocs s.Pstats.s_frees;
  Alcotest.(check bool) "tiny working set" true (s.Pstats.s_creates <= 3)

let test_target_one_adaptive () =
  let p = make_pool ~target:1 ~depot_batches:1 ~mode:`Adaptive () in
  Alcotest.(check int) "base" 1 (Pool.current_target p);
  Pool.adapt_now p ~contended:true ~dropped:false;
  Alcotest.(check int) "grew by one step" 2 (Pool.current_target p);
  Pool.adapt_now p ~contended:false ~dropped:true;
  (* Halving the excess over base 1 from 2: back to 1 (the floor). *)
  Alcotest.(check int) "shrank to floor" 1 (Pool.current_target p);
  let o = Pool.alloc p in
  Pool.release p o

(* --- tentpole: the adaptation trajectory is deterministic --- *)

let test_trajectory_deterministic () =
  let p = make_pool ~target:4 ~depot_batches:4 ~mode:`Adaptive () in
  let signal grow =
    Pool.adapt_now p ~contended:grow ~dropped:(not grow)
  in
  List.iter signal [ true; true; true; false; false; true ];
  (* grow_step defaults to the base target (4), ceilings to 8x base;
     shrink halves the excess over the base. *)
  let expect =
    [ (true, 8, 8); (true, 12, 12); (true, 16, 16);
      (false, 10, 10); (false, 7, 7); (true, 11, 11) ]
  in
  let got =
    List.map
      (fun (e : Pool.adapt_event) ->
        (e.Pool.ev_grow, e.Pool.ev_target, e.Pool.ev_bound))
      (Pool.trajectory p)
  in
  Alcotest.(check (list (triple bool int int))) "exact trajectory" expect got;
  Alcotest.(check int) "final target" 11 (Pool.current_target p);
  Alcotest.(check int) "final bound" 11 (Pool.depot_bound p);
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check int) "grows counted" 4 s.Pstats.s_grows;
  Alcotest.(check int) "shrinks counted" 2 s.Pstats.s_shrinks

let test_trajectory_ceiling () =
  let p = make_pool ~target:2 ~depot_batches:2 ~mode:`Adaptive () in
  for _ = 1 to 20 do
    Pool.adapt_now p ~contended:true ~dropped:false
  done;
  Alcotest.(check int) "pinned at 8x base" 16 (Pool.current_target p);
  Alcotest.(check int) "bound pinned too" 16 (Pool.depot_bound p);
  (* Signals at the ceiling are no-ops: no phantom trajectory events. *)
  Alcotest.(check int) "only real steps recorded" 7
    (List.length (Pool.trajectory p))

let test_adapt_now_fixed_noop () =
  let p = make_pool ~target:4 ~depot_batches:4 () in
  Pool.adapt_now p ~contended:true ~dropped:false;
  Alcotest.(check int) "fixed mode never moves" 4 (Pool.current_target p);
  Alcotest.(check int) "no events" 0 (List.length (Pool.trajectory p))

(* Adaptive mode reacts to real traffic: a burst of constructions
   followed by a flood of releases is churn (drop near a miss), which
   must grow the geometry.  Single-domain, so fully deterministic. *)
let test_adaptive_grows_under_churn () =
  let p = make_pool ~target:2 ~depot_batches:1 ~mode:`Adaptive () in
  let live = List.init 64 (fun _ -> Pool.alloc p) in
  List.iter (Pool.release p) live;
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check bool) "grew" true (s.Pstats.s_grows > 0);
  Alcotest.(check bool) "geometry above base" true (Pool.current_target p > 2)

(* --- satellite: refill (the SpeedMalloc dedicated-core hook) --- *)

let test_refill () =
  let p = make_pool ~target:4 ~depot_batches:4 () in
  Alcotest.(check int) "kept until full" 4 (Pool.refill p ~batches:10);
  let s = Pstats.read (Pool.stats p) in
  Alcotest.(check int) "prefills counted" 4 s.Pstats.s_prefills;
  Alcotest.(check int) "one speculative batch dropped" 1 s.Pstats.s_drops;
  Alcotest.(check int) "depot fully stocked" 4 (Pool.depot_batches p);
  (* Workers now never pay constructor cost. *)
  let o = Pool.alloc p in
  Alcotest.(check int) "no create on alloc" 0
    (Pstats.creates (Pool.stats p));
  Pool.release p o;
  Alcotest.(check int) "zero batches is a no-op" 0 (Pool.refill p ~batches:0);
  Alcotest.check_raises "negative batches rejected"
    (Invalid_argument "Pool.refill: batches < 0") (fun () ->
      ignore (Pool.refill p ~batches:(-1)))

let suite =
  [
    Alcotest.test_case "pstats racing readers" `Quick
      test_pstats_racing_readers;
    Alcotest.test_case "depot overflow drops" `Quick test_depot_overflow_drops;
    Alcotest.test_case "flush_local cross-domain" `Quick
      test_flush_local_cross_domain;
    Alcotest.test_case "reset raising abandons" `Quick test_reset_raising;
    Alcotest.test_case "target:1" `Quick test_target_one;
    Alcotest.test_case "target:1 adaptive" `Quick test_target_one_adaptive;
    Alcotest.test_case "deterministic trajectory" `Quick
      test_trajectory_deterministic;
    Alcotest.test_case "trajectory ceiling" `Quick test_trajectory_ceiling;
    Alcotest.test_case "adapt_now noop in fixed" `Quick
      test_adapt_now_fixed_noop;
    Alcotest.test_case "adaptive grows under churn" `Quick
      test_adaptive_grows_under_churn;
    Alcotest.test_case "refill" `Quick test_refill;
  ]
