let () =
  Alcotest.run "objpool"
    [
      ("magazine", Test_magazine.suite);
      ("depot", Test_depot.suite);
      ("pool", Test_pool.suite);
      ("adaptive", Test_adaptive.suite);
    ]
