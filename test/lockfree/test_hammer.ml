(* Seeded multi-CPU hammer: every CPU runs a deterministic random
   alloc/free mix against one shared lock-free allocator while a
   host-side word map asserts no two live blocks ever overlap.  After
   the storm, conservation and the quiescent invariants must hold
   exactly.  [run] is reused by the determinism proof. *)

type outcome = {
  elapsed : int;
  stats : string;  (** rendered counters, compared verbatim *)
  checksum : int;  (** order-sensitive digest of every alloc result *)
}

let lcg s = ((s * 25214903917) + 11) land ((1 lsl 48) - 1)

let run ~which ~ncpus ~iters ~seed () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus ~memory_words:262144 ~uncached_words:512 ())
  in
  let a, probe = Baseline.Allocator.create_probed which m in
  let claimed : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let claim ~cpu addr words =
    for w = addr to addr + words - 1 do
      if Hashtbl.mem claimed w then
        Alcotest.failf "cpu %d: word %d of block %d already live" cpu w addr;
      Hashtbl.replace claimed w cpu
    done
  in
  let release addr words =
    for w = addr to addr + words - 1 do
      Hashtbl.remove claimed w
    done
  in
  let checksum = ref 0 in
  let program cpu =
    let rnd = ref (seed + ((cpu + 1) * 7919)) in
    let next () =
      rnd := lcg !rnd;
      (!rnd lsr 11) land 0xffffff
    in
    let live = ref [] in
    let nlive = ref 0 in
    for _ = 1 to iters do
      let r = next () in
      if r land 3 = 0 && !nlive > 0 then (
        match !live with
        | (addr, bytes) :: rest ->
            live := rest;
            decr nlive;
            release addr (bytes / 4);
            a.Baseline.Allocator.free ~addr ~bytes
        | [] -> ())
      else begin
        let bytes = 16 lsl (r lsr 8 mod 6) in
        let addr = a.Baseline.Allocator.alloc ~bytes in
        checksum := lcg (!checksum lxor addr);
        if addr <> 0 then begin
          claim ~cpu addr (bytes / 4);
          live := (addr, bytes) :: !live;
          incr nlive
        end
      end
    done;
    List.iter
      (fun (addr, bytes) ->
        release addr (bytes / 4);
        a.Baseline.Allocator.free ~addr ~bytes)
      !live
  in
  Sim.Machine.run_symmetric m ~ncpus program;
  Alcotest.(check int) "nothing live after drain" 0 (Hashtbl.length claimed);
  (match probe.Baseline.Allocator.drained () with
  | None -> ()
  | Some msg -> Alcotest.failf "drain check failed: %s" msg);
  {
    elapsed = Sim.Machine.elapsed m;
    stats =
      (match probe.Baseline.Allocator.stats with
      | Some s -> Lockfree.Stats.to_string s
      | None -> "");
    checksum = !checksum;
  }

let test_nbbuddy_hammer () =
  let outcome =
    run ~which:Baseline.Allocator.Nbbuddy ~ncpus:8 ~iters:300 ~seed:1 ()
  in
  Alcotest.(check bool) "made progress" true (outcome.elapsed > 0)

let test_nbbuddy_invariants () =
  (* same storm, against a direct handle, then oracle-check *)
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus:8 ~memory_words:262144 ~uncached_words:512 ())
  in
  let b = Lockfree.Nbbuddy.create m in
  let program cpu =
    let rnd = ref (1 + ((cpu + 1) * 104729)) in
    let next () =
      rnd := lcg !rnd;
      (!rnd lsr 11) land 0xffffff
    in
    let live = ref [] in
    for _ = 1 to 300 do
      let r = next () in
      if r land 3 = 0 then (
        match !live with
        | (addr, bytes) :: rest ->
            live := rest;
            Lockfree.Nbbuddy.free b ~addr ~bytes
        | [] -> ())
      else begin
        let bytes = 16 lsl (r lsr 8 mod 7) in
        let addr = Lockfree.Nbbuddy.alloc b ~bytes in
        if addr <> 0 then live := (addr, bytes) :: !live
      end
    done;
    List.iter (fun (addr, bytes) -> Lockfree.Nbbuddy.free b ~addr ~bytes) !live
  in
  Sim.Machine.run_symmetric m ~ncpus:8 program;
  (match Lockfree.Nbbuddy.invariant_oracle b with
  | None -> ()
  | Some msg -> Alcotest.failf "invariant violated: %s" msg);
  Alcotest.(check int) "conservation" 0
    (Lockfree.Nbbuddy.allocated_words_oracle b);
  let s = Lockfree.Nbbuddy.stats b in
  Alcotest.(check bool) "counters consistent" true
    (s.Lockfree.Stats.cas_failures <= s.Lockfree.Stats.cas_attempts)

let test_bwfixed_hammer () =
  let outcome =
    run ~which:Baseline.Allocator.Bwfixed ~ncpus:8 ~iters:300 ~seed:2 ()
  in
  Alcotest.(check bool) "made progress" true (outcome.elapsed > 0)

let test_bwfixed_conservation () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus:8 ~memory_words:262144 ~uncached_words:512 ())
  in
  let b = Lockfree.Bwfixed.create m in
  let program cpu =
    let rnd = ref (2 + ((cpu + 1) * 104729)) in
    let next () =
      rnd := lcg !rnd;
      (!rnd lsr 11) land 0xffffff
    in
    let live = ref [] in
    for _ = 1 to 300 do
      let r = next () in
      if r land 3 = 0 then (
        match !live with
        | (addr, bytes) :: rest ->
            live := rest;
            Lockfree.Bwfixed.free b ~addr ~bytes
        | [] -> ())
      else begin
        let bytes = 16 lsl (r lsr 8 mod 7) in
        let addr = Lockfree.Bwfixed.alloc b ~bytes in
        if addr <> 0 then live := (addr, bytes) :: !live
      end
    done;
    List.iter (fun (addr, bytes) -> Lockfree.Bwfixed.free b ~addr ~bytes) !live
  in
  Sim.Machine.run_symmetric m ~ncpus:8 program;
  for c = 0 to 8 do
    Alcotest.(check int)
      (Printf.sprintf "class %d conserved" c)
      (Lockfree.Bwfixed.blocks_of_class b ~c)
      (Lockfree.Bwfixed.free_blocks_oracle b ~c)
  done

let test_nbbuddy_helping () =
  (* Preemption-heavy hammer for the unmark helping path (ISSUE 9):
     the window is two ops wide — an allocation must land in a subtree
     between a freeing CPU's parent-bit clear and its recheck — so the
     E13 sweeps, whose per-CPU hints spread CPUs across wide rows,
     never hit it ([helps] stays 0).  Force it: a depth-8 tree (4096
     memory words) has exactly two 2048 B nodes under one 4096 B root,
     so eight CPUs mixing the two top classes collide on every
     operation and the scheduler drives allocations through the
     window.  Quiescent invariants and conservation must survive the
     storm. *)
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus:8 ~memory_words:4096 ~uncached_words:512 ())
  in
  let b = Lockfree.Nbbuddy.create m in
  let program cpu =
    let rnd = ref (9 + ((cpu + 1) * 6271)) in
    for _ = 1 to 400 do
      rnd := lcg !rnd;
      let bytes = if (!rnd lsr 11) land 3 = 0 then 4096 else 2048 in
      let addr = Lockfree.Nbbuddy.alloc b ~bytes in
      if addr <> 0 then begin
        Sim.Machine.write addr cpu;
        Lockfree.Nbbuddy.free b ~addr ~bytes
      end
    done
  in
  Sim.Machine.run_symmetric m ~ncpus:8 program;
  let s = Lockfree.Nbbuddy.stats b in
  Alcotest.(check bool) "helping path exercised" true
    (s.Lockfree.Stats.helps > 0);
  Alcotest.(check bool) "rollback path exercised" true
    (s.Lockfree.Stats.conflicts > 0);
  (match Lockfree.Nbbuddy.invariant_oracle b with
  | None -> ()
  | Some msg -> Alcotest.failf "invariant violated: %s" msg);
  Alcotest.(check int) "conservation" 0
    (Lockfree.Nbbuddy.allocated_words_oracle b)

let test_crosscpu_remote_free () =
  (* producer/consumer rings: blocks allocated on one CPU are freed on
     another — the remote-free path of both arms end to end *)
  List.iter
    (fun which ->
      let r =
        Workload.Crosscpu.run ~which ~pairs:2 ~blocks_per_pair:200 ~bytes:256
          ()
      in
      Alcotest.(check int)
        (Baseline.Allocator.name_of which ^ " transfers")
        400 r.Workload.Crosscpu.transfers)
    [ Baseline.Allocator.Nbbuddy; Baseline.Allocator.Bwfixed ]

let suite =
  [
    Alcotest.test_case "nbbuddy hammer" `Quick test_nbbuddy_hammer;
    Alcotest.test_case "nbbuddy invariants" `Quick test_nbbuddy_invariants;
    Alcotest.test_case "nbbuddy helping" `Quick test_nbbuddy_helping;
    Alcotest.test_case "bwfixed hammer" `Quick test_bwfixed_hammer;
    Alcotest.test_case "bwfixed conservation" `Quick test_bwfixed_conservation;
    Alcotest.test_case "crosscpu remote free" `Quick test_crosscpu_remote_free;
  ]
