(* The determinism proof for the lock-free arms: the same seeded
   multi-CPU storm on a fresh machine yields bit-identical cycle counts,
   retry statistics and allocation results every time — and the same
   again with the simulator's same-CPU fast path disabled, so none of
   the lock-free protocols' outcomes depend on the execution route. *)

let storm which ~seed =
  Test_hammer.run ~which ~ncpus:6 ~iters:250 ~seed ()

let check_same name (a : Test_hammer.outcome) (b : Test_hammer.outcome) =
  Alcotest.(check int) (name ^ ": cycles") a.elapsed b.elapsed;
  Alcotest.(check string) (name ^ ": stats") a.stats b.stats;
  Alcotest.(check int) (name ^ ": results") a.checksum b.checksum

let test_repeat which () =
  let name = Baseline.Allocator.name_of which in
  let o1 = storm which ~seed:11 in
  let o2 = storm which ~seed:11 in
  check_same name o1 o2;
  (* a different seed must actually change the run, or the proof above
     proves nothing *)
  let o3 = storm which ~seed:12 in
  Alcotest.(check bool) (name ^ ": seed matters") true (o3.checksum <> o1.checksum)

let test_fastpath_equivalence which () =
  let name = Baseline.Allocator.name_of which in
  let fast = storm which ~seed:21 in
  Sim.Machine.set_fast_path false;
  let slow =
    Fun.protect
      ~finally:(fun () -> Sim.Machine.set_fast_path true)
      (fun () -> storm which ~seed:21)
  in
  check_same (name ^ " fast=scheduled") fast slow

let suite =
  [
    Alcotest.test_case "nbbuddy repeat" `Quick
      (test_repeat Baseline.Allocator.Nbbuddy);
    Alcotest.test_case "bwfixed repeat" `Quick
      (test_repeat Baseline.Allocator.Bwfixed);
    Alcotest.test_case "nbbuddy fast=scheduled" `Quick
      (test_fastpath_equivalence Baseline.Allocator.Nbbuddy);
    Alcotest.test_case "bwfixed fast=scheduled" `Quick
      (test_fastpath_equivalence Baseline.Allocator.Bwfixed);
  ]
