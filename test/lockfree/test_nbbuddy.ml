(* Unit coverage for the non-blocking buddy: implicit splitting and
   coalescing through the status tree, conflict-free reuse, exhaustion,
   and the quiescent invariant oracle. *)

let machine ?(ncpus = 2) () =
  Sim.Machine.create
    (Sim.Config.make ~ncpus ~memory_words:131072 ~uncached_words:512 ())

let on_cpu0 m f =
  let out = ref None in
  Sim.Machine.run m [| (fun _ -> out := Some (f ())) |];
  Option.get !out

let check_oracle b what =
  match Lockfree.Nbbuddy.invariant_oracle b with
  | None -> ()
  | Some msg -> Alcotest.failf "%s: invariant violated: %s" what msg

let test_roundtrip () =
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  on_cpu0 m (fun () ->
      List.iter
        (fun bytes ->
          let a = Lockfree.Nbbuddy.alloc b ~bytes in
          Alcotest.(check bool) "alloc succeeds" true (a <> 0);
          Lockfree.Nbbuddy.free b ~addr:a ~bytes)
        [ 16; 32; 64; 100; 256; 512; 1024; 2048; 4096 ]);
  Alcotest.(check int) "all returned" 0 (Lockfree.Nbbuddy.allocated_words_oracle b);
  check_oracle b "roundtrip"

let test_split_accounting () =
  (* A 16 B claim splits a chunk implicitly: only the claimed words are
     accounted, and the invariant holds with marks up the tree. *)
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  let a = on_cpu0 m (fun () -> Lockfree.Nbbuddy.alloc b ~bytes:16) in
  Alcotest.(check bool) "got block" true (a <> 0);
  Alcotest.(check int) "4 words claimed" 4
    (Lockfree.Nbbuddy.allocated_words_oracle b);
  check_oracle b "after split";
  on_cpu0 m (fun () -> Lockfree.Nbbuddy.free b ~addr:a ~bytes:16);
  Alcotest.(check int) "released" 0 (Lockfree.Nbbuddy.allocated_words_oracle b);
  check_oracle b "after free"

let test_implicit_coalesce () =
  (* Fill whole chunks with small blocks, free them all, then claim at
     the top class: freeing the last small piece must have re-created
     claimable 4096 B blocks with no explicit merge. *)
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  let chunks = Lockfree.Nbbuddy.arena_words b / 1024 in
  on_cpu0 m (fun () ->
      let live = ref [] in
      for _ = 1 to 512 do
        let a = Lockfree.Nbbuddy.alloc b ~bytes:64 in
        Alcotest.(check bool) "small alloc" true (a <> 0);
        live := a :: !live
      done;
      List.iter (fun a -> Lockfree.Nbbuddy.free b ~addr:a ~bytes:64) !live;
      let big = ref [] in
      for _ = 1 to chunks do
        let a = Lockfree.Nbbuddy.alloc b ~bytes:4096 in
        Alcotest.(check bool) "chunk alloc after coalesce" true (a <> 0);
        big := a :: !big
      done;
      (* the arena is now entirely claimed at the top class *)
      Alcotest.(check int) "exhausted" 0 (Lockfree.Nbbuddy.alloc b ~bytes:16);
      List.iter (fun a -> Lockfree.Nbbuddy.free b ~addr:a ~bytes:4096) !big);
  Alcotest.(check int) "conserved" 0 (Lockfree.Nbbuddy.allocated_words_oracle b);
  check_oracle b "coalesce"

let test_exhaustion_and_recovery () =
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  let words = Lockfree.Nbbuddy.arena_words b in
  on_cpu0 m (fun () ->
      let live = ref [] in
      let n = ref 0 in
      let rec fill () =
        let a = Lockfree.Nbbuddy.alloc b ~bytes:4096 in
        if a <> 0 then begin
          live := a :: !live;
          incr n;
          fill ()
        end
      in
      fill ();
      Alcotest.(check int) "whole arena claimable" (words / 1024) !n;
      Alcotest.(check int) "exhausted" 0 (Lockfree.Nbbuddy.alloc b ~bytes:16);
      (match !live with
      | a :: rest ->
          Lockfree.Nbbuddy.free b ~addr:a ~bytes:4096;
          let again = Lockfree.Nbbuddy.alloc b ~bytes:2048 in
          Alcotest.(check bool) "recovers after free" true (again <> 0);
          Lockfree.Nbbuddy.free b ~addr:again ~bytes:2048;
          List.iter (fun a -> Lockfree.Nbbuddy.free b ~addr:a ~bytes:4096) rest
      | [] -> Alcotest.fail "no blocks"));
  check_oracle b "exhaustion"

let test_bad_sizes () =
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  on_cpu0 m (fun () ->
      Alcotest.(check int) "oversize is 0" 0
        (Lockfree.Nbbuddy.alloc b ~bytes:8192);
      Alcotest.check_raises "zero bytes"
        (Invalid_argument "Lockfree.Nbbuddy: bytes <= 0") (fun () ->
          ignore (Lockfree.Nbbuddy.alloc b ~bytes:0)))

let test_stats_move () =
  let m = machine () in
  let b = Lockfree.Nbbuddy.create m in
  on_cpu0 m (fun () ->
      let a = Lockfree.Nbbuddy.alloc b ~bytes:16 in
      Lockfree.Nbbuddy.free b ~addr:a ~bytes:16);
  let s = Lockfree.Nbbuddy.stats b in
  Alcotest.(check bool) "claim CAS counted" true (s.Lockfree.Stats.cas_attempts >= 1);
  Alcotest.(check bool) "marks counted" true (s.Lockfree.Stats.mark_rmws >= 2);
  Lockfree.Stats.reset s;
  Alcotest.(check int) "reset" 0 s.Lockfree.Stats.cas_attempts

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "split accounting" `Quick test_split_accounting;
    Alcotest.test_case "implicit coalesce" `Quick test_implicit_coalesce;
    Alcotest.test_case "exhaustion and recovery" `Quick
      test_exhaustion_and_recovery;
    Alcotest.test_case "bad sizes" `Quick test_bad_sizes;
    Alcotest.test_case "stats" `Quick test_stats_move;
  ]
