(* Unit coverage for the Blelloch–Wei-style fixed-size arm: private
   fast path, batch refill/flush edges, exhaustion, conservation. *)

let machine ?(ncpus = 2) () =
  Sim.Machine.create
    (Sim.Config.make ~ncpus ~memory_words:131072 ~uncached_words:512 ())

let on_cpu0 m f =
  let out = ref None in
  Sim.Machine.run m [| (fun _ -> out := Some (f ())) |];
  Option.get !out

let test_roundtrip () =
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  on_cpu0 m (fun () ->
      List.iter
        (fun bytes ->
          let a = Lockfree.Bwfixed.alloc b ~bytes in
          Alcotest.(check bool) "alloc succeeds" true (a <> 0);
          Lockfree.Bwfixed.free b ~addr:a ~bytes)
        [ 16; 32; 64; 100; 256; 512; 1024; 2048; 4096 ]);
  Alcotest.(check int) "all classes conserved" 0
    (List.fold_left
       (fun acc c ->
         acc + Lockfree.Bwfixed.blocks_of_class b ~c
         - Lockfree.Bwfixed.free_blocks_oracle b ~c)
       0
       [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_refill_batching () =
  (* One refill CAS serves a whole batch of allocations: the fast path
     is private after the first pop. *)
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  let s = Lockfree.Bwfixed.stats b in
  on_cpu0 m (fun () ->
      let blocks = Array.init 8 (fun _ -> Lockfree.Bwfixed.alloc b ~bytes:64) in
      Array.iter (fun a -> Alcotest.(check bool) "alloc" true (a <> 0)) blocks;
      Alcotest.(check int) "one refill for eight allocs" 1 s.Lockfree.Stats.refills;
      Alcotest.(check int) "no flush yet" 0 s.Lockfree.Stats.flushes;
      (* distinct addresses *)
      let sorted = Array.copy blocks in
      Array.sort compare sorted;
      for i = 1 to 7 do
        Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
      done;
      Array.iter (fun a -> Lockfree.Bwfixed.free b ~addr:a ~bytes:64) blocks)

let test_flush_edge () =
  (* Fill the private stack past its cap: exactly one batch goes back
     to the shared stack. *)
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  let s = Lockfree.Bwfixed.stats b in
  on_cpu0 m (fun () ->
      (* 16 allocs drain exactly two batches and leave the private
         stack empty; 16 frees then hit the cap exactly once *)
      let live =
        Array.init 16 (fun _ -> Lockfree.Bwfixed.alloc b ~bytes:32)
      in
      Alcotest.(check int) "two refills" 2 s.Lockfree.Stats.refills;
      Array.iter (fun a -> Lockfree.Bwfixed.free b ~addr:a ~bytes:32) live;
      Alcotest.(check int) "one flush at the cap" 1 s.Lockfree.Stats.flushes);
  Alcotest.(check int) "class conserved"
    (Lockfree.Bwfixed.blocks_of_class b ~c:1)
    (Lockfree.Bwfixed.free_blocks_oracle b ~c:1)

let test_exhaustion () =
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  let total = Lockfree.Bwfixed.blocks_of_class b ~c:8 in
  on_cpu0 m (fun () ->
      let live = ref [] in
      let n = ref 0 in
      let rec fill () =
        let a = Lockfree.Bwfixed.alloc b ~bytes:4096 in
        if a <> 0 then begin
          live := a :: !live;
          incr n;
          fill ()
        end
      in
      fill ();
      Alcotest.(check int) "every block reachable on one CPU" total !n;
      Alcotest.(check int) "exhausted" 0 (Lockfree.Bwfixed.alloc b ~bytes:4096);
      List.iter (fun a -> Lockfree.Bwfixed.free b ~addr:a ~bytes:4096) !live);
  Alcotest.(check int) "class conserved" total
    (Lockfree.Bwfixed.free_blocks_oracle b ~c:8)

let test_steal () =
  (* The per-CPU-visible exhaustion fix (ROADMAP): blocks parked on
     another CPU's private stack must be reachable.  CPU 0 drains class
     8 entirely, then frees 10 blocks back — they sit in CPU 0's
     private stack, below the flush cap, with the shared stack empty.
     CPU 1's alloc then has nothing private and nothing shared; before
     the fix it returned 0 here.  Now it claims CPU 0's stack with one
     tagged CAS, routes the blocks through the shared stack, and
     serves the alloc. *)
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  let s = Lockfree.Bwfixed.stats b in
  let parked = 10 in
  Sim.Machine.run m
    [|
      (fun _ ->
        let live = ref [] in
        let rec fill () =
          let a = Lockfree.Bwfixed.alloc b ~bytes:4096 in
          if a <> 0 then begin
            live := a :: !live;
            fill ()
          end
        in
        fill ();
        for _ = 1 to parked do
          match !live with
          | a :: rest ->
              Lockfree.Bwfixed.free b ~addr:a ~bytes:4096;
              live := rest
          | [] -> Alcotest.fail "class 8 arena too small"
        done);
    |];
  Alcotest.(check int) "blocks parked on CPU 0" parked
    (Lockfree.Bwfixed.free_blocks_oracle b ~c:8);
  let got = ref 0 in
  Sim.Machine.run m
    [| (fun _ -> ()); (fun _ -> got := Lockfree.Bwfixed.alloc b ~bytes:4096) |];
  Alcotest.(check bool) "CPU 1's alloc served from CPU 0's stack" true
    (!got <> 0);
  Alcotest.(check bool) "a steal happened" true (s.Lockfree.Stats.steals >= 1);
  Alcotest.(check int) "conserved after the steal" (parked - 1)
    (Lockfree.Bwfixed.free_blocks_oracle b ~c:8)

let test_bad_sizes () =
  let m = machine () in
  let b = Lockfree.Bwfixed.create m in
  on_cpu0 m (fun () ->
      Alcotest.(check int) "oversize is 0" 0
        (Lockfree.Bwfixed.alloc b ~bytes:8192);
      Alcotest.check_raises "zero bytes"
        (Invalid_argument "Lockfree.Bwfixed: bytes <= 0") (fun () ->
          ignore (Lockfree.Bwfixed.alloc b ~bytes:0)))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "refill batching" `Quick test_refill_batching;
    Alcotest.test_case "flush edge" `Quick test_flush_edge;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "steal on exhaustion" `Quick test_steal;
    Alcotest.test_case "bad sizes" `Quick test_bad_sizes;
  ]
