let () =
  Alcotest.run "lockfree"
    [
      ("nbbuddy", Test_nbbuddy.suite);
      ("bwfixed", Test_bwfixed.suite);
      ("hammer", Test_hammer.suite);
      ("determinism", Test_determinism.suite);
    ]
