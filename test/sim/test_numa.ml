open Sim

(* Regression tests for the 63/64-CPU sharer-bitmask overflow, plus the
   two-level NUMA cost model built on the fixed width-independent
   sharer set.

   The overflow: the line directory used to track sharers as a single
   native-int bitmask via [1 lsl cpu].  OCaml ints are 63-bit, so CPU
   63's bit was silently 0 (it never registered as a sharer at all) and
   CPU 62 landed on the sign bit — quietly wrong coherence accounting
   at the very top of the then-allowed [ncpus <= 64] range.  These
   tests fail against that representation and pass against the word
   array. *)

let cfg ?(ncpus = 4) ?nodes ?node_miss_cost ?node_c2c_cost
    ?(memory_words = 4096) () =
  Config.make ~ncpus ?nodes ?node_miss_cost ?node_c2c_cost ~cache_lines:0
    ~memory_words ()

(* --- the sharer-bitmask overflow, directly on the cache model --- *)

let test_cpu63_registers_as_sharer () =
  let c = cfg ~ncpus:64 () in
  let cache = Cache.create c in
  for cpu = 0 to 63 do
    ignore (Cache.access cache ~cpu 100 Cache.Load)
  done;
  let hs = Cache.holders cache 100 in
  Alcotest.(check int) "all 64 CPUs hold the line" 64 (List.length hs);
  Alcotest.(check bool) "CPU 63 is a sharer" true (List.mem 63 hs);
  Alcotest.(check bool) "CPU 62 is a sharer" true (List.mem 62 hs);
  (* The second load by each CPU must be a hit — with the overflow, CPU
     63 missed every single time. *)
  Alcotest.(check int) "CPU 63 re-load hits" 0
    (Cache.access cache ~cpu:63 100 Cache.Load);
  let st = Cache.stats cache ~cpu:63 in
  Alcotest.(check int) "CPU 63 counted one miss" 1 st.Cache.misses;
  Alcotest.(check int) "CPU 63 counted one hit" 1 st.Cache.hits

let test_invalidation_reaches_cpu63 () =
  let c = cfg ~ncpus:64 () in
  let cache = Cache.create c in
  for cpu = 0 to 63 do
    ignore (Cache.access cache ~cpu 200 Cache.Load)
  done;
  ignore (Cache.access cache ~cpu:0 200 Cache.Store);
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "store invalidated all 63 other copies" 63
    st.Cache.invalidations;
  Alcotest.(check (list int)) "only the writer holds it" [ 0 ]
    (Cache.holders cache 200);
  (* With CPU 62 on the sign bit, the eviction/steal bookkeeping could
     corrupt resident counts; they must all be consistent. *)
  for cpu = 1 to 63 do
    Alcotest.(check int)
      (Printf.sprintf "CPU %d resident count" cpu)
      0
      (Cache.resident cache ~cpu)
  done

let test_exclusive_store_at_cpu63 () =
  let c = cfg ~ncpus:64 () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:63 300 Cache.Load);
  (* Exclusive upgrade must be silent; with the overflow the line never
     looked held, so the store was priced as a miss. *)
  Alcotest.(check int) "CPU 63 exclusive store is silent" 0
    (Cache.access cache ~cpu:63 300 Cache.Store);
  Alcotest.(check (option int)) "CPU 63 owns dirty" (Some 63)
    (Cache.dirty_owner cache 300)

let test_cap_lift_to_512 () =
  let c = cfg ~ncpus:512 ~memory_words:65536 () in
  let cache = Cache.create c in
  for cpu = 0 to 511 do
    ignore (Cache.access cache ~cpu 100 Cache.Load)
  done;
  Alcotest.(check int) "512 sharers tracked" 512
    (List.length (Cache.holders cache 100));
  ignore (Cache.access cache ~cpu:511 100 Cache.Store);
  let st = Cache.stats cache ~cpu:511 in
  Alcotest.(check int) "511 invalidations" 511 st.Cache.invalidations

let test_config_guard () =
  let expect_invalid what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  (* The cap is now Config.max_cpus, guarded against the scheduler's
     packed-key width by a static assertion in Machine. *)
  ignore (Config.make ~ncpus:Config.max_cpus ~memory_words:65536 ());
  expect_invalid "ncpus above max_cpus" (fun () ->
      Config.make ~ncpus:(Config.max_cpus + 1) ~memory_words:65536 ());
  expect_invalid "nodes > ncpus" (fun () ->
      Config.make ~ncpus:4 ~nodes:8 ())

(* --- scheduler above the old 64-CPU heap packing --- *)

let test_machine_runs_128_cpus () =
  let c = cfg ~ncpus:128 ~memory_words:65536 () in
  let m = Machine.create c in
  let hits = Array.make 128 0 in
  Machine.run_symmetric m ~ncpus:128 (fun cpu ->
      (* Distinct lines then one contended line: exercises both the
         heap ordering and cross-CPU coherence at ids >= 64. *)
      ignore (Machine.read (cpu * 8));
      Machine.write 4000 cpu;
      hits.(cpu) <- 1);
  Alcotest.(check int) "every CPU ran" 128 (Array.fold_left ( + ) 0 hits);
  Alcotest.(check bool) "time advanced" true (Machine.elapsed m > 0);
  Alcotest.(check (list int)) "last writer holds the contended line"
    [ 127 ]
    (Cache.holders (Machine.cache m) 4000)

let test_scheduled_equals_fast_at_80_cpus () =
  (* Determinism above the old cap: the same program must produce
     bit-identical clocks with the same-CPU fast path on and off. *)
  let run () =
    let c = cfg ~ncpus:80 ~memory_words:65536 () in
    let m = Machine.create c in
    Machine.run_symmetric m ~ncpus:80 (fun cpu ->
        for i = 0 to 20 do
          ignore (Machine.read ((cpu * 16) + i));
          Machine.write 5000 (cpu + i)
        done);
    (Machine.elapsed m, (Cache.total_stats (Machine.cache m)).Cache.stall_cycles)
  in
  let was = Machine.fast_path_enabled () in
  Machine.set_fast_path true;
  let fast = run () in
  Machine.set_fast_path false;
  let sched = run () in
  Machine.set_fast_path was;
  Alcotest.(check (pair int int)) "fast = scheduled at 80 CPUs" sched fast

(* --- two-level NUMA cost model --- *)

let test_topology_oracles () =
  let c = cfg ~ncpus:8 ~nodes:2 () in
  let cache = Cache.create c in
  Alcotest.(check int) "cpu 0 on node 0" 0 (Cache.node_of_cpu cache 0);
  Alcotest.(check int) "cpu 3 on node 0" 0 (Cache.node_of_cpu cache 3);
  Alcotest.(check int) "cpu 4 on node 1" 1 (Cache.node_of_cpu cache 4);
  Alcotest.(check int) "cpu 7 on node 1" 1 (Cache.node_of_cpu cache 7);
  Alcotest.(check int) "low memory homes on node 0" 0
    (Cache.home_of_addr cache 0);
  Alcotest.(check int) "high memory homes on node 1" 1
    (Cache.home_of_addr cache 4095)

let test_local_vs_remote_miss () =
  let c = cfg ~ncpus:8 ~nodes:2 ~node_miss_cost:60 () in
  let cache = Cache.create c in
  (* Address 0 homes on node 0: local for cpu 0, remote for cpu 4. *)
  Alcotest.(check int) "local miss at flat price" c.Config.miss_cost
    (Cache.access cache ~cpu:0 0 Cache.Load);
  let remote_addr = 4088 (* last line, homes on node 1 *) in
  Alcotest.(check int) "remote miss pays the surcharge"
    (c.Config.miss_cost + 60)
    (Cache.access cache ~cpu:0 remote_addr Cache.Load);
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "one remote access counted" 1 st.Cache.remote

let test_c2c_same_vs_cross_node () =
  let c = cfg ~ncpus:8 ~nodes:2 ~node_miss_cost:60 ~node_c2c_cost:80 () in
  let cache = Cache.create c in
  (* Dirty on cpu 0 (node 0); address homes on node 0. *)
  ignore (Cache.access cache ~cpu:0 0 Cache.Store);
  Alcotest.(check int) "same-node dirty transfer at flat price"
    c.Config.c2c_cost
    (Cache.access cache ~cpu:1 0 Cache.Load);
  ignore (Cache.access cache ~cpu:0 0 Cache.Store);
  Alcotest.(check int) "cross-node dirty transfer pays node_c2c"
    (c.Config.c2c_cost + 80)
    (Cache.access cache ~cpu:4 0 Cache.Load)

let test_c2c_three_hop_directory () =
  let c =
    cfg ~ncpus:12 ~nodes:3 ~node_miss_cost:60 ~node_c2c_cost:80 ()
  in
  let cache = Cache.create c in
  (* Owner on node 2, requester on node 0, home on node 1 (middle third
     of the 4096-word memory): the request detours through the home
     directory, paying node_c2c + node_miss. *)
  let addr = 2048 in
  Alcotest.(check int) "home is node 1" 1 (Cache.home_of_addr cache addr);
  ignore (Cache.access cache ~cpu:8 addr Cache.Store);
  Alcotest.(check int) "three-hop transfer"
    (c.Config.c2c_cost + 80 + 60)
    (Cache.access cache ~cpu:0 addr Cache.Load)

let test_upgrade_cross_node () =
  let c = cfg ~ncpus:8 ~nodes:2 ~node_c2c_cost:80 () in
  let cache = Cache.create c in
  (* Shared within node 0 only: invalidation round stays local. *)
  ignore (Cache.access cache ~cpu:0 0 Cache.Load);
  ignore (Cache.access cache ~cpu:1 0 Cache.Load);
  Alcotest.(check int) "same-node upgrade at flat price"
    c.Config.upgrade_cost
    (Cache.access cache ~cpu:0 0 Cache.Store);
  (* Shared across nodes: the round crosses the interconnect. *)
  ignore (Cache.access cache ~cpu:1 0 Cache.Load);
  ignore (Cache.access cache ~cpu:4 0 Cache.Load);
  Alcotest.(check int) "cross-node upgrade pays node_c2c"
    (c.Config.upgrade_cost + 80)
    (Cache.access cache ~cpu:0 0 Cache.Store)

let test_flat_machine_never_pays () =
  (* nodes = 1 (the default): node surcharges are configured but can
     never apply — the bit-identicality contract for every pre-NUMA
     recorded cycle count. *)
  let c = cfg ~ncpus:8 ~node_miss_cost:999 ~node_c2c_cost:999 () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 0 Cache.Store);
  Alcotest.(check int) "c2c at flat price" c.Config.c2c_cost
    (Cache.access cache ~cpu:7 0 Cache.Load);
  Alcotest.(check int) "miss at flat price" c.Config.miss_cost
    (Cache.access cache ~cpu:3 4088 Cache.Load);
  Alcotest.(check int) "no remote accesses" 0
    (Cache.total_stats cache).Cache.remote

let test_per_node_buses () =
  (* Two CPUs on different nodes miss at the same instant, each
     against its own node's memory: with per-node buses neither waits.
     On the flat machine the second transfer queues behind the
     first. *)
  let run nodes =
    let c =
      Config.make ~ncpus:8 ~nodes ~cache_lines:0 ~memory_words:4096 ()
    in
    let m = Machine.create c in
    let t = Array.make 8 0 in
    Machine.run
      m
      [|
        (fun _ -> ignore (Machine.read 0); t.(0) <- Machine.now ());
        (fun _ -> ());
        (fun _ -> ());
        (fun _ -> ());
        (fun _ -> ignore (Machine.read 2056); t.(4) <- Machine.now ());
        (fun _ -> ());
        (fun _ -> ());
        (fun _ -> ());
      |];
    (t.(0), t.(4))
  in
  let flat0, flat4 = run 1 in
  let numa0, numa4 = run 2 in
  Alcotest.(check int) "first requester unaffected" flat0 numa0;
  Alcotest.(check bool)
    (Printf.sprintf "no cross-node bus queueing (%d < %d)" numa4 flat4)
    true (numa4 < flat4)

let prop_numa_stall_accounting =
  let gen =
    QCheck.(small_list (triple (int_bound 7) (int_bound 511) (int_bound 2)))
  in
  QCheck.Test.make ~name:"stall accounting holds on a NUMA machine"
    ~count:200 gen (fun ops ->
      let c = cfg ~ncpus:8 ~nodes:4 ~node_miss_cost:7 ~node_c2c_cost:11 () in
      let cache = Cache.create c in
      let total = ref 0 in
      List.iter
        (fun (cpu, addr, k) ->
          let kind =
            match k with 0 -> Cache.Load | 1 -> Cache.Store | _ -> Cache.Rmw
          in
          total := !total + Cache.access cache ~cpu addr kind)
        ops;
      (Cache.total_stats cache).Cache.stall_cycles = !total)

(* Property: the NUMA machine keeps the MESI invariants at widths
   spanning several sharer words. *)
let prop_wide_coherence_invariants =
  let gen =
    QCheck.(
      small_list (triple (int_bound 99) (int_bound 511) (int_bound 2)))
  in
  QCheck.Test.make ~name:"MESI invariants at 100 CPUs across 4 nodes"
    ~count:100 gen (fun ops ->
      let c = cfg ~ncpus:100 ~nodes:4 () in
      let cache = Cache.create c in
      List.iter
        (fun (cpu, addr, k) ->
          let kind =
            match k with 0 -> Cache.Load | 1 -> Cache.Store | _ -> Cache.Rmw
          in
          ignore (Cache.access cache ~cpu addr kind))
        ops;
      List.for_all
        (fun (_, addr, _) ->
          let hs = Cache.holders cache addr in
          match Cache.dirty_owner cache addr with
          | Some o -> hs = [ o ]
          | None -> true)
        ops)

let suite =
  [
    Alcotest.test_case "CPU 63 registers as a sharer (overflow regression)"
      `Quick test_cpu63_registers_as_sharer;
    Alcotest.test_case "invalidation reaches CPU 63 (overflow regression)"
      `Quick test_invalidation_reaches_cpu63;
    Alcotest.test_case "exclusive store at CPU 63 is silent" `Quick
      test_exclusive_store_at_cpu63;
    Alcotest.test_case "sharer set scales to 512 CPUs" `Quick
      test_cap_lift_to_512;
    Alcotest.test_case "config cap guard" `Quick test_config_guard;
    Alcotest.test_case "scheduler runs 128 CPUs" `Quick
      test_machine_runs_128_cpus;
    Alcotest.test_case "fast path bit-identical at 80 CPUs" `Quick
      test_scheduled_equals_fast_at_80_cpus;
    Alcotest.test_case "node topology oracles" `Quick test_topology_oracles;
    Alcotest.test_case "local vs remote memory miss" `Quick
      test_local_vs_remote_miss;
    Alcotest.test_case "dirty transfer same vs cross node" `Quick
      test_c2c_same_vs_cross_node;
    Alcotest.test_case "three-hop directory transfer" `Quick
      test_c2c_three_hop_directory;
    Alcotest.test_case "upgrade crossing the interconnect" `Quick
      test_upgrade_cross_node;
    Alcotest.test_case "flat machine never pays NUMA costs" `Quick
      test_flat_machine_never_pays;
    Alcotest.test_case "per-node buses do not queue cross-node" `Quick
      test_per_node_buses;
    QCheck_alcotest.to_alcotest prop_numa_stall_accounting;
    QCheck_alcotest.to_alcotest prop_wide_coherence_invariants;
  ]
