(* Geometry parsing and validation: the spec-string surface both
   drivers expose as --geometry / KMA_GEOMETRY.  The invariants are the
   ones documented in geometry.mli; the drivers rely on every bad spec
   coming back as [Error] (never an exception) so they can exit with a
   usage error before any simulation runs. *)

let geom = Alcotest.testable (Fmt.of_to_string Sim.Geometry.to_string) ( = )

let ok = function
  | Ok g -> g
  | Error m -> Alcotest.fail ("expected Ok, got Error: " ^ m)

let err name = function
  | Ok g ->
      Alcotest.fail
        (Printf.sprintf "%s: expected Error, got %s" name
           (Sim.Geometry.to_string g))
  | Error m ->
      Alcotest.(check bool)
        (name ^ ": message is not empty")
        true
        (String.length m > 0)

let test_default_round_trips () =
  Alcotest.check geom "of_string (to_string default)" Sim.Geometry.default
    (ok (Sim.Geometry.of_string (Sim.Geometry.to_string Sim.Geometry.default)))

let test_empty_spec_is_default () =
  Alcotest.check geom "empty spec" Sim.Geometry.default
    (ok (Sim.Geometry.of_string ""))

let test_partial_spec_overrides () =
  let g = ok (Sim.Geometry.of_string " line=16 , assoc=4 ") in
  Alcotest.(check int) "line" 16 g.Sim.Geometry.line_words;
  Alcotest.(check int) "assoc" 4 g.Sim.Geometry.ways;
  Alcotest.(check int)
    "untouched keys keep defaults" Sim.Geometry.default.Sim.Geometry.miss_cost
    g.Sim.Geometry.miss_cost

let test_costs_parse () =
  let g = ok (Sim.Geometry.of_string "insn=2,miss=60,c2c=100,upgrade=0,rmw=0") in
  Alcotest.(check int) "insn" 2 g.Sim.Geometry.insn_cost;
  Alcotest.(check int) "miss" 60 g.Sim.Geometry.miss_cost;
  Alcotest.(check int) "c2c" 100 g.Sim.Geometry.c2c_cost;
  Alcotest.(check int) "upgrade" 0 g.Sim.Geometry.upgrade_cost;
  Alcotest.(check int) "rmw" 0 g.Sim.Geometry.rmw_cost

let test_bad_specs_error () =
  List.iter
    (fun spec -> err spec (Sim.Geometry.of_string spec))
    [
      "bogus" (* not key=value *);
      "line" (* no '=' *);
      "line=eight" (* not an integer *);
      "pony=1" (* unknown key *);
      "line=3" (* not a power of two *);
      "line=-8" (* negative *);
      "miss=-1" (* negative cost *);
      "assoc=3" (* 3 does not divide 256 *);
      "assoc=2,lines=0" (* set-associative needs a bounded cache *);
      "lines=96,assoc=2" (* 48 sets: not a power of two *);
    ]

let test_validate_raises () =
  match
    Sim.Geometry.validate
      { Sim.Geometry.default with Sim.Geometry.line_words = 12 }
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      Alcotest.(check bool) "names the field" true
        (String.length m > 0
        && String.length m >= 10
        && String.sub m 0 12 = "Sim.Geometry")

let test_of_env () =
  (* putenv mutates process state; restore the unset-equivalent ("")
     so later tests and of_env callers see the default again. *)
  Fun.protect
    ~finally:(fun () -> Unix.putenv Sim.Geometry.env_var "")
    (fun () ->
      Unix.putenv Sim.Geometry.env_var "";
      Alcotest.check geom "unset/empty is default" Sim.Geometry.default
        (ok (Sim.Geometry.of_env ()));
      Unix.putenv Sim.Geometry.env_var "line=4,miss=45";
      let g = ok (Sim.Geometry.of_env ()) in
      Alcotest.(check int) "line from env" 4 g.Sim.Geometry.line_words;
      Alcotest.(check int) "miss from env" 45 g.Sim.Geometry.miss_cost;
      Unix.putenv Sim.Geometry.env_var "line=5";
      err "bad env spec" (Sim.Geometry.of_env ()))

let test_ambient_install () =
  let g = ok (Sim.Geometry.of_string "line=16,lines=128") in
  Fun.protect
    ~finally:(fun () -> Sim.Geometry.set_ambient Sim.Geometry.default)
    (fun () ->
      Sim.Geometry.set_ambient g;
      Alcotest.check geom "ambient returns the installed geometry" g
        (Sim.Geometry.ambient ()));
  Alcotest.check geom "restored to default" Sim.Geometry.default
    (Sim.Geometry.ambient ())

let test_config_carries_geometry () =
  let g = ok (Sim.Geometry.of_string "line=16,lines=64,miss=42") in
  let c = Sim.Config.make ~geometry:g ~memory_words:(64 * 1024) () in
  Alcotest.(check int) "line_words" 16 c.Sim.Config.line_words;
  Alcotest.(check int) "cache_lines" 64 c.Sim.Config.cache_lines;
  Alcotest.(check int) "miss_cost" 42 c.Sim.Config.miss_cost

let suite =
  [
    Alcotest.test_case "default round-trips" `Quick test_default_round_trips;
    Alcotest.test_case "empty spec is default" `Quick
      test_empty_spec_is_default;
    Alcotest.test_case "partial spec overrides" `Quick
      test_partial_spec_overrides;
    Alcotest.test_case "cost keys parse" `Quick test_costs_parse;
    Alcotest.test_case "bad specs are Error" `Quick test_bad_specs_error;
    Alcotest.test_case "validate raises with field name" `Quick
      test_validate_raises;
    Alcotest.test_case "of_env parses KMA_GEOMETRY" `Quick test_of_env;
    Alcotest.test_case "set_ambient installs" `Quick test_ambient_install;
    Alcotest.test_case "Config.make carries geometry" `Quick
      test_config_carries_geometry;
  ]
