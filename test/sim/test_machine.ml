open Sim

let machine ?(ncpus = 4) ?(cache_lines = 0) () =
  Machine.create (Config.make ~ncpus ~cache_lines ~memory_words:65536 ())

let test_read_write_roundtrip () =
  let m = machine () in
  let result = ref 0 in
  Machine.run m
    [|
      (fun _ ->
        Machine.write 100 42;
        result := Machine.read 100);
    |];
  Alcotest.(check int) "read back" 42 !result;
  Alcotest.(check int) "visible in memory" 42 (Memory.get (Machine.memory m) 100)

let test_work_charges_time () =
  let m = machine () in
  Machine.run m [| (fun _ -> Machine.work 1000) |];
  Alcotest.(check int) "time charged" 1000 (Machine.cpu_time m ~cpu:0);
  Alcotest.(check int) "retired" 1000 (Machine.retired m ~cpu:0)

let test_cpu_id_and_now () =
  let m = machine () in
  let ids = Array.make 3 (-1) in
  let times = Array.make 3 (-1) in
  Machine.run m
    (Array.init 3 (fun _ _cpu ->
         let id = Machine.cpu_id () in
         Machine.work (10 * (id + 1));
         ids.(id) <- id;
         times.(id) <- Machine.now ()));
  Alcotest.(check (array int)) "ids" [| 0; 1; 2 |] ids;
  Alcotest.(check (array int)) "now reflects work" [| 10; 20; 30 |] times

let test_determinism () =
  let trace_of () =
    let m = machine ~ncpus:3 () in
    let log = ref [] in
    Machine.run_symmetric m ~ncpus:3 (fun cpu ->
        for i = 1 to 20 do
          let v = Machine.fetch_add 8 1 in
          Machine.work ((cpu + i) mod 5);
          log := (cpu, v) :: !log
        done);
    (!log, Machine.elapsed m)
  in
  let t1 = trace_of () and t2 = trace_of () in
  Alcotest.(check bool) "identical traces" true (t1 = t2)

let test_fetch_add_atomic () =
  let m = machine ~ncpus:4 () in
  Machine.run_symmetric m ~ncpus:4 (fun _ ->
      for _ = 1 to 500 do
        ignore (Machine.fetch_add 16 1)
      done);
  Alcotest.(check int) "no lost updates" 2000 (Memory.get (Machine.memory m) 16)

let test_bitwise_rmw_semantics () =
  let m = machine ~ncpus:1 () in
  Memory.set (Machine.memory m) 16 0b1100;
  let log = ref [] in
  Machine.run m
    [|
      (fun _ ->
        log := ("or", Machine.fetch_or 16 0b0110) :: !log;
        log := ("and", Machine.fetch_and 16 0b0011) :: !log;
        log := ("casv hit", Machine.cas_val 16 ~expected:0b0010 ~desired:42) :: !log;
        log := ("casv miss", Machine.cas_val 16 ~expected:7 ~desired:99) :: !log);
    |];
  Alcotest.(check (list (pair string int)))
    "old values witnessed"
    [ ("or", 0b1100); ("and", 0b1110); ("casv hit", 0b0010); ("casv miss", 42) ]
    (List.rev !log);
  Alcotest.(check int) "final value" 42 (Memory.get (Machine.memory m) 16)

let test_bitwise_rmw_atomic () =
  (* concurrent single-bit ORs never lose updates (the non-blocking
     buddy's ancestor-marking pattern) *)
  let m = machine ~ncpus:4 () in
  Machine.run_symmetric m ~ncpus:4 (fun cpu ->
      for _ = 1 to 100 do
        ignore (Machine.fetch_or 16 (1 lsl cpu));
        ignore (Machine.fetch_and 24 (lnot (1 lsl cpu)))
      done);
  Alcotest.(check int) "all bits set" 0b1111 (Memory.get (Machine.memory m) 16)

let test_new_rmw_costs () =
  (* every RMW flavour pays exactly the same charge: the rmw geometry
     knob, through the same cache path *)
  let elapsed_of op =
    let m = machine ~ncpus:1 () in
    Machine.run m [| (fun _ -> op ()) |];
    Machine.elapsed m
  in
  let base = elapsed_of (fun () -> ignore (Machine.fetch_add 16 1)) in
  Alcotest.(check int) "fetch_or" base
    (elapsed_of (fun () -> ignore (Machine.fetch_or 16 1)));
  Alcotest.(check int) "fetch_and" base
    (elapsed_of (fun () -> ignore (Machine.fetch_and 16 1)));
  Alcotest.(check int) "cas_val" base
    (elapsed_of (fun () -> ignore (Machine.cas_val 16 ~expected:0 ~desired:1)));
  Alcotest.(check int) "cas" base
    (elapsed_of (fun () -> ignore (Machine.cas 16 ~expected:0 ~desired:1)))

(* A plain read-increment-write is NOT atomic in the simulation: with
   interleaving CPUs, updates are lost — the machine really does model a
   racy shared memory. *)
let test_plain_rmw_races () =
  let m = machine ~ncpus:4 () in
  Machine.run_symmetric m ~ncpus:4 (fun _ ->
      for _ = 1 to 500 do
        let v = Machine.read 16 in
        Machine.write 16 (v + 1)
      done);
  let total = Memory.get (Machine.memory m) 16 in
  Alcotest.(check bool) "updates lost" true (total < 2000);
  Alcotest.(check bool) "some progress" true (total >= 500)

let test_spinlock_mutual_exclusion () =
  let m = machine ~ncpus:4 () in
  let lock = Spinlock.init (Machine.memory m) 8 in
  Machine.run_symmetric m ~ncpus:4 (fun _ ->
      for _ = 1 to 250 do
        Spinlock.with_lock lock (fun () ->
            let v = Machine.read 16 in
            Machine.work 3;
            Machine.write 16 (v + 1))
      done);
  Alcotest.(check int) "exact count under lock" 1000
    (Memory.get (Machine.memory m) 16);
  Alcotest.(check bool) "lock released" false
    (Spinlock.holder_oracle (Machine.memory m) lock)

let test_try_acquire () =
  let m = machine ~ncpus:1 () in
  let lock = Spinlock.init (Machine.memory m) 8 in
  let got = ref [] in
  Machine.run m
    [|
      (fun _ ->
        got := Spinlock.try_acquire lock :: !got;
        got := Spinlock.try_acquire lock :: !got;
        Spinlock.release lock;
        got := Spinlock.try_acquire lock :: !got);
    |];
  Alcotest.(check (list bool)) "acquire, fail, reacquire" [ true; false; true ]
    (List.rev !got)

let test_lock_contention_costs () =
  (* Under contention the same critical section takes far more cycles per
     operation than uncontended: the core phenomenon the paper's
     allocator avoids. *)
  let run ncpus =
    let m = machine ~ncpus () in
    let lock = Spinlock.init (Machine.memory m) 8 in
    Machine.run_symmetric m ~ncpus (fun _ ->
        for _ = 1 to 200 do
          Spinlock.with_lock lock (fun () ->
              let v = Machine.read 16 in
              Machine.write 16 (v + 1))
        done);
    float_of_int (Machine.elapsed m) /. float_of_int (200 * ncpus)
  in
  let per_op_1 = run 1 and per_op_4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "contended %.1f > 2x uncontended %.1f" per_op_4 per_op_1)
    true
    (per_op_4 > 2.0 *. per_op_1)

let test_virtual_time_accumulates_across_runs () =
  let m = machine () in
  Machine.run m [| (fun _ -> Machine.work 100) |];
  Machine.run m [| (fun _ -> Machine.work 50) |];
  Alcotest.(check int) "accumulated" 150 (Machine.cpu_time m ~cpu:0);
  Machine.reset_clocks m;
  Alcotest.(check int) "reset" 0 (Machine.cpu_time m ~cpu:0)

let test_irq_flag () =
  let m = machine () in
  let mid = ref true and after = ref false in
  Machine.run m
    [|
      (fun _ ->
        Machine.irq_disable ();
        (* observe the flag from inside via host closure *)
        mid := Machine.irq_disabled m ~cpu:0;
        Machine.irq_enable ();
        after := Machine.irq_disabled m ~cpu:0);
    |];
  Alcotest.(check bool) "disabled inside" true !mid;
  Alcotest.(check bool) "enabled after" false !after

let test_ops_outside_simulation () =
  Alcotest.check_raises "read outside" Machine.Not_in_simulation (fun () ->
      ignore (Machine.read 0))

let test_too_many_programs () =
  let m = machine ~ncpus:2 () in
  match Machine.run m (Array.make 3 (fun _ -> ())) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_watchdog_catches_livelock () =
  let m = machine ~ncpus:2 () in
  match
    Machine.run ~max_cycles:50_000 m
      [|
        (fun _ ->
          (* Spins on a signal nobody will ever write. *)
          while Machine.read 8 = 0 do
            Machine.spin_pause ()
          done);
        (fun _ -> Machine.work 10);
      |]
  with
  | () -> Alcotest.fail "expected Watchdog"
  | exception Machine.Watchdog t ->
      Alcotest.(check bool) "expired past the limit" true (t > 50_000)

let test_watchdog_quiet_on_success () =
  let m = machine () in
  Machine.run ~max_cycles:1_000_000 m [| (fun _ -> Machine.work 100) |];
  Alcotest.(check int) "ran normally" 100 (Machine.cpu_time m ~cpu:0)

let test_bus_model_single_cpu_neutral () =
  (* With one CPU nothing ever queues on the bus, so the model must not
     change single-CPU timings (this protects every single-CPU
     calibration, including the 15x headline ratio). *)
  let run bus_model =
    let m =
      Machine.create
        (Config.make ~ncpus:1 ~memory_words:65536 ~cache_lines:64
           ~bus_model ())
    in
    Machine.run m
      [|
        (fun _ ->
          for i = 0 to 2000 do
            Machine.write ((i * 7) mod 4096) i;
            ignore (Machine.read ((i * 13) mod 4096))
          done);
      |];
    Machine.elapsed m
  in
  Alcotest.(check int) "identical timing" (run false) (run true)

let test_bus_model_serialises_misses () =
  (* Eight CPUs streaming back-to-back misses oversubscribe the bus
     (8 transfers x 1/4 occupancy > 1), so the run takes visibly longer
     than with an infinitely wide bus. *)
  let run bus_model =
    let m =
      Machine.create
        (Config.make ~ncpus:8 ~memory_words:131072 ~cache_lines:8
           ~bus_model ())
    in
    Machine.run_symmetric m ~ncpus:8 (fun cpu ->
        for i = 0 to 2000 do
          (* Disjoint per-CPU streams: pure capacity misses, no
             coherence, so the only interaction is the bus itself. *)
          ignore (Machine.read (8192 + (cpu * 8192) + (i * 8 mod 8192)))
        done);
    Machine.elapsed m
  in
  let free_bus = run false and queued = run true in
  Alcotest.(check bool)
    (Printf.sprintf "queued %d > free %d" queued free_bus)
    true
    (queued > free_bus + (free_bus / 2))

let test_vmsys_accounting () =
  let m = machine () in
  let vm = Vmsys.create ~total_pages:2 ~grant_cost:100 ~reclaim_cost:50 in
  let results = ref [] in
  Machine.run m
    [|
      (fun _ ->
        results := Vmsys.grant vm :: !results;
        results := Vmsys.grant vm :: !results;
        results := Vmsys.grant vm :: !results;
        Vmsys.reclaim vm;
        results := Vmsys.grant vm :: !results);
    |];
  Alcotest.(check (list bool))
    "grant/exhaust/reclaim/grant"
    [ true; true; false; true ]
    (List.rev !results);
  Alcotest.(check int) "granted" 2 (Vmsys.granted vm);
  Alcotest.(check int) "peak" 2 (Vmsys.peak_granted vm);
  Alcotest.(check int) "grants counted" 3 (Vmsys.grant_count vm);
  (* 4 grant attempts (one failed, still charged) + 1 reclaim *)
  Alcotest.(check int) "cycles charged" 450 (Machine.cpu_time m ~cpu:0)

let test_vmsys_fault_injection () =
  let m = machine () in
  let vm = Vmsys.create ~total_pages:100 ~grant_cost:10 ~reclaim_cost:5 in
  Alcotest.(check (float 0.)) "no faults by default" 0. (Vmsys.fault_rate vm);
  (* rate 1.0: every grant denied, all denials flagged as injected, and
     nothing is actually handed out. *)
  Vmsys.set_fault_rate vm ~seed:11 1.0;
  Machine.run m
    [|
      (fun _ ->
        for _ = 1 to 5 do
          Alcotest.(check bool) "denied" false (Vmsys.grant vm)
        done);
    |];
  Alcotest.(check int) "denials counted" 5 (Vmsys.denial_count vm);
  Alcotest.(check int) "all injected" 5 (Vmsys.injected_denial_count vm);
  Alcotest.(check int) "nothing granted" 0 (Vmsys.granted vm);
  (* Failed grants are still charged: the caller paid for the trip. *)
  Alcotest.(check int) "grant cost charged" 50 (Machine.cpu_time m ~cpu:0);
  (* rate 0.0 turns the faults back off on the same instance. *)
  Vmsys.set_fault_rate vm 0.0;
  Machine.run m [| (fun _ -> Alcotest.(check bool) "granted" true (Vmsys.grant vm)) |];
  Alcotest.(check int) "injected count unchanged" 5
    (Vmsys.injected_denial_count vm);
  (* Same seed and rate => identical draw sequence. *)
  let denials seed =
    let m = machine () in
    let vm = Vmsys.create ~total_pages:100 ~grant_cost:0 ~reclaim_cost:0 in
    Vmsys.set_fault_rate vm ~seed 0.5;
    let outcomes = ref [] in
    Machine.run m
      [|
        (fun _ ->
          for _ = 1 to 64 do
            outcomes := Vmsys.grant vm :: !outcomes
          done);
      |];
    !outcomes
  in
  Alcotest.(check (list bool)) "deterministic" (denials 42) (denials 42);
  Alcotest.(check bool) "seed changes the sequence" true
    (denials 42 <> denials 43);
  (* Exhaustion denials are counted but not flagged as injected. *)
  let vm2 = Vmsys.create ~total_pages:1 ~grant_cost:0 ~reclaim_cost:0 in
  let m2 = machine () in
  Machine.run m2
    [| (fun _ -> ignore (Vmsys.grant vm2); ignore (Vmsys.grant vm2)) |];
  Alcotest.(check int) "exhaustion denial" 1 (Vmsys.denial_count vm2);
  Alcotest.(check int) "not injected" 0 (Vmsys.injected_denial_count vm2);
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Sim.Vmsys.set_fault_rate: rate outside [0,1]")
    (fun () -> Vmsys.set_fault_rate vm2 (-0.1))

(* Property: under the spinlock, any mix of add amounts from any number
   of CPUs sums exactly. *)
let prop_locked_counter_exact =
  QCheck.Test.make ~name:"locked counter is exact" ~count:30
    QCheck.(pair (int_range 1 4) (small_list (int_bound 100)))
    (fun (ncpus, amounts) ->
      let m = machine ~ncpus () in
      let lock = Spinlock.init (Machine.memory m) 8 in
      Machine.run_symmetric m ~ncpus (fun _ ->
          List.iter
            (fun a ->
              Spinlock.with_lock lock (fun () ->
                  let v = Machine.read 16 in
                  Machine.write 16 (v + a)))
            amounts);
      Memory.get (Machine.memory m) 16
      = ncpus * List.fold_left ( + ) 0 amounts)

(* Property: elapsed time is monotone in the amount of work done. *)
let prop_time_monotone =
  QCheck.Test.make ~name:"virtual time monotone in work" ~count:50
    QCheck.(pair (int_bound 500) (int_bound 500))
    (fun (w1, w2) ->
      let run w =
        let m = machine ~ncpus:1 () in
        Machine.run m [| (fun _ -> Machine.work w) |];
        Machine.elapsed m
      in
      (w1 <= w2) = (run w1 <= run w2))

let suite =
  [
    Alcotest.test_case "read/write roundtrip" `Quick test_read_write_roundtrip;
    Alcotest.test_case "work charges time" `Quick test_work_charges_time;
    Alcotest.test_case "cpu_id and now" `Quick test_cpu_id_and_now;
    Alcotest.test_case "runs are deterministic" `Quick test_determinism;
    Alcotest.test_case "fetch_add is atomic" `Quick test_fetch_add_atomic;
    Alcotest.test_case "bitwise rmw semantics" `Quick
      test_bitwise_rmw_semantics;
    Alcotest.test_case "bitwise rmw atomic" `Quick test_bitwise_rmw_atomic;
    Alcotest.test_case "new rmw flavours cost like fetch_add" `Quick
      test_new_rmw_costs;
    Alcotest.test_case "plain rmw races (lost updates)" `Quick
      test_plain_rmw_races;
    Alcotest.test_case "spinlock mutual exclusion" `Quick
      test_spinlock_mutual_exclusion;
    Alcotest.test_case "try_acquire" `Quick test_try_acquire;
    Alcotest.test_case "lock contention inflates cost" `Quick
      test_lock_contention_costs;
    Alcotest.test_case "virtual time across runs" `Quick
      test_virtual_time_accumulates_across_runs;
    Alcotest.test_case "irq flag tracked" `Quick test_irq_flag;
    Alcotest.test_case "ops outside simulation rejected" `Quick
      test_ops_outside_simulation;
    Alcotest.test_case "too many programs rejected" `Quick
      test_too_many_programs;
    Alcotest.test_case "watchdog catches livelock" `Quick
      test_watchdog_catches_livelock;
    Alcotest.test_case "watchdog quiet on success" `Quick
      test_watchdog_quiet_on_success;
    Alcotest.test_case "bus model neutral on one CPU" `Quick
      test_bus_model_single_cpu_neutral;
    Alcotest.test_case "bus model serialises misses" `Quick
      test_bus_model_serialises_misses;
    Alcotest.test_case "vmsys accounting" `Quick test_vmsys_accounting;
    Alcotest.test_case "vmsys fault injection" `Quick
      test_vmsys_fault_injection;
    QCheck_alcotest.to_alcotest prop_locked_counter_exact;
    QCheck_alcotest.to_alcotest prop_time_monotone;
  ]
