(* The fast-path equivalence proof at the machine level: running ANY
   program with the same-CPU inline fast path disabled (every operation
   through the effect handler and scheduler, the pre-fast-path mode)
   and enabled must produce bit-identical virtual time, per-CPU clocks,
   retired-operation counts, and memory contents.  The experiment-level
   fig7/E8 proofs live in test/experiments; this one drives randomized
   multi-CPU programs straight at [Sim.Machine] so shrinking points at
   the offending operation mix. *)

open Sim

let mem_words = 4096

(* A deterministic mixed-operation program: reads, writes, RMWs, work,
   raw relaxed spins, and a contended spinlock critical section (the
   relaxed-Spin inlining leg plus the scheduled TAS leg).  Addresses
   span the uncached region (first 64 words: the lock and counters) and
   the cached region, across enough lines to force evictions and
   cross-CPU invalidations. *)
let program lock seed len cpu =
  let st = ref ((seed * 69069) + (cpu * 7919) + 1) in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st
  in
  for _ = 1 to len do
    match next () mod 11 with
    | 0 -> ignore (Machine.read (64 + (next () mod 1024)))
    | 1 -> Machine.write (64 + (next () mod 1024)) (next ())
    | 2 -> ignore (Machine.fetch_add (32 + (next () mod 8)) 1)
    | 3 -> Machine.work (1 + (next () mod 5))
    | 4 ->
        ignore
          (Machine.cas
             (40 + (next () mod 8))
             ~expected:0 ~desired:(next ()))
    | 5 -> ignore (Machine.swap (48 + (next () mod 8)) (next ()))
    | 6 ->
        Spinlock.with_lock lock (fun () ->
            Machine.write 60 (Machine.read 60 + 1))
    | 7 -> ignore (Machine.fetch_or (52 + (next () mod 4)) (next () land 0xff))
    | 8 ->
        ignore (Machine.fetch_and (52 + (next () mod 4)) (lnot (next () land 0xf)))
    | 9 ->
        ignore
          (Machine.cas_val
             (40 + (next () mod 8))
             ~expected:(next () land 1) ~desired:(next ()))
    | _ -> Machine.spin_pause ()
  done

type snapshot = {
  elapsed : int;
  cpu_times : int list;
  retired : int list;
  memory : int array;
}

let execute ~fast (ncpus, seed, len) =
  Machine.set_fast_path fast;
  Fun.protect
    ~finally:(fun () -> Machine.set_fast_path true)
    (fun () ->
      let config =
        Config.make ~ncpus ~memory_words:mem_words ~uncached_words:64 ()
      in
      let m = Machine.create config in
      let lock = Spinlock.init (Machine.memory m) 8 in
      Machine.run_symmetric m ~ncpus (program lock seed len);
      {
        elapsed = Machine.elapsed m;
        cpu_times =
          List.init ncpus (fun cpu -> Machine.cpu_time m ~cpu);
        retired = List.init ncpus (fun cpu -> Machine.retired m ~cpu);
        memory = Memory.blit_to_host (Machine.memory m) 0 ~len:mem_words;
      })

let case =
  QCheck.(
    triple (int_range 1 4) (int_range 0 1_000_000) (int_range 1 400))

let prop_fast_slow_identical =
  QCheck.Test.make ~name:"fast path is cycle- and state-identical"
    ~count:40 case (fun c ->
      let slow = execute ~fast:false c in
      let fast = execute ~fast:true c in
      slow.elapsed = fast.elapsed
      && slow.cpu_times = fast.cpu_times
      && slow.retired = fast.retired
      && slow.memory = fast.memory)

(* The oracle itself: with the fast path forced off, every operation is
   scheduled, and the toggle reports what it did. *)
let test_toggle () =
  Alcotest.(check bool) "default on" true (Machine.fast_path_enabled ());
  Machine.set_fast_path false;
  Alcotest.(check bool) "off" false (Machine.fast_path_enabled ());
  Machine.set_fast_path true;
  Alcotest.(check bool) "back on" true (Machine.fast_path_enabled ())

(* The non-default geometries matter too: the fast path must commute
   with capacity misses, set indexing, and changed costs. *)
let test_identical_under_geometry () =
  List.iter
    (fun spec ->
      let g =
        match Geometry.of_string spec with
        | Ok g -> g
        | Error m -> Alcotest.fail m
      in
      let execute fast =
        Machine.set_fast_path fast;
        Fun.protect
          ~finally:(fun () -> Machine.set_fast_path true)
          (fun () ->
            let config =
              Config.make ~geometry:g ~ncpus:3 ~memory_words:mem_words
                ~uncached_words:64 ()
            in
            let m = Machine.create config in
            let lock = Spinlock.init (Machine.memory m) 8 in
            Machine.run_symmetric m ~ncpus:3 (program lock 1234 300);
            (Machine.elapsed m, Memory.blit_to_host (Machine.memory m) 0 ~len:mem_words)
          )
      in
      let slow_t, slow_m = execute false in
      let fast_t, fast_m = execute true in
      Alcotest.(check int) (spec ^ ": cycles") slow_t fast_t;
      Alcotest.(check bool) (spec ^ ": memory") true (slow_m = fast_m))
    [ "line=4,lines=16"; "lines=32,assoc=2"; "miss=60,c2c=100,rmw=0" ]

let suite =
  [
    Alcotest.test_case "fast-path toggle oracle" `Quick test_toggle;
    QCheck_alcotest.to_alcotest prop_fast_slow_identical;
    Alcotest.test_case "identical under non-default geometry" `Quick
      test_identical_under_geometry;
  ]
