let () =
  Alcotest.run "sim"
    [
      ("config", Test_config.suite);
      ("geometry", Test_geometry.suite);
      ("memory", Test_memory.suite);
      ("cache", Test_cache.suite);
      ("numa", Test_numa.suite);
      ("machine", Test_machine.suite);
      ("spinlock", Test_spinlock.suite);
      ("litmus", Test_litmus.suite);
      ("fastpath", Test_fastpath.suite);
    ]
