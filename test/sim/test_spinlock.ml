(* Direct unit tests for Sim.Spinlock's previously untested paths:
   try_acquire (single-attempt semantics, success and failure) and
   with_lock's release-then-re-raise on an exception escaping the
   critical section. *)

open Sim

exception Boom

let machine ?(ncpus = 2) () =
  Machine.create (Config.make ~ncpus ~cache_lines:0 ~memory_words:65536 ())

let test_try_acquire_free () =
  let m = machine () in
  let l = Spinlock.init (Machine.memory m) 64 in
  let got = ref false and held = ref false in
  Machine.run m
    [|
      (fun _ ->
        got := Spinlock.try_acquire l;
        held := Machine.read (Spinlock.addr l) = Spinlock.locked_value;
        Spinlock.release l);
    |];
  Alcotest.(check bool) "acquired a free lock" true !got;
  Alcotest.(check bool) "lock word set while held" true !held;
  Alcotest.(check bool) "unlocked at the end" false
    (Spinlock.holder_oracle (Machine.memory m) l)

let test_try_acquire_held () =
  let m = machine () in
  let l = Spinlock.init (Machine.memory m) 64 in
  let second = ref true in
  Machine.run m
    [|
      (fun _ ->
        ignore (Spinlock.try_acquire l);
        (* Still held: a second single attempt must fail, not spin. *)
        second := Spinlock.try_acquire l;
        Spinlock.release l);
    |];
  Alcotest.(check bool) "second attempt fails while held" false !second;
  Alcotest.(check bool) "unlocked at the end" false
    (Spinlock.holder_oracle (Machine.memory m) l)

let test_with_lock_reraises_after_release () =
  let m = machine () in
  let l = Spinlock.init (Machine.memory m) 64 in
  let raised = ref false and reacquired = ref false in
  Machine.run m
    [|
      (fun _ ->
        (match Spinlock.with_lock l (fun () -> raise Boom) with
        | () -> ()
        | exception Boom -> raised := true);
        (* The lock must have been released on the exception path: a
           single fresh attempt succeeds immediately. *)
        reacquired := Spinlock.try_acquire l;
        Spinlock.release l);
    |];
  Alcotest.(check bool) "exception re-raised" true !raised;
  Alcotest.(check bool) "released before re-raise" true !reacquired;
  Alcotest.(check bool) "unlocked at the end" false
    (Spinlock.holder_oracle (Machine.memory m) l)

let test_with_lock_returns_value () =
  let m = machine () in
  let l = Spinlock.init (Machine.memory m) 64 in
  let v = ref 0 in
  Machine.run m [| (fun _ -> v := Spinlock.with_lock l (fun () -> 41 + 1)) |];
  Alcotest.(check int) "value returned" 42 !v;
  Alcotest.(check bool) "unlocked at the end" false
    (Spinlock.holder_oracle (Machine.memory m) l)

let suite =
  [
    Alcotest.test_case "try_acquire takes a free lock" `Quick
      test_try_acquire_free;
    Alcotest.test_case "try_acquire fails on a held lock (one attempt)"
      `Quick test_try_acquire_held;
    Alcotest.test_case "with_lock releases then re-raises" `Quick
      test_with_lock_reraises_after_release;
    Alcotest.test_case "with_lock returns the body's value" `Quick
      test_with_lock_returns_value;
  ]
