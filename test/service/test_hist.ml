open Service

(* The log-scale latency histogram: exact below 16 ns, ~9 % resolution
   above, exact maximum in the top bucket, lossless merge. *)

let test_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Hist.p50 h));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Hist.mean_ns h))

let test_exact_small () =
  let h = Hist.create () in
  for v = 1 to 10 do
    Hist.add h v
  done;
  Alcotest.(check int) "count" 10 (Hist.count h);
  (* Values below 16 ns land in exact buckets. *)
  Alcotest.(check (float 0.0)) "p50 exact" 5.0 (Hist.p50 h);
  Alcotest.(check (float 0.0)) "p0 exact" 1.0 (Hist.quantile h 0.0);
  Alcotest.(check int) "max" 10 (Hist.max_ns h)

let test_resolution () =
  let h = Hist.create () in
  Hist.add h 1000;
  let q = Hist.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "within 9%% of 1000 (got %.0f)" q)
    true
    (Float.abs (q -. 1000.) /. 1000. < 0.09)

let test_top_bucket_exact_max () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 100; 5_000; 123_456 ];
  Alcotest.(check int) "max" 123_456 (Hist.max_ns h);
  Alcotest.(check (float 0.0)) "p999 is the recorded max" 123_456.0
    (Hist.p999 h)

let test_negative_clamps () =
  let h = Hist.create () in
  Hist.add h (-5);
  Alcotest.(check int) "counted" 1 (Hist.count h);
  Alcotest.(check int) "as zero" 0 (Hist.max_ns h)

let test_merge () =
  let a = Hist.create () and b = Hist.create () in
  for v = 1 to 8 do
    Hist.add a v
  done;
  List.iter (Hist.add b) [ 2_000; 4_000; 8_000; 16_000 ];
  let into = Hist.create () in
  Hist.merge ~into a;
  Hist.merge ~into b;
  Alcotest.(check int) "count adds" 12 (Hist.count into);
  Alcotest.(check int) "max survives" 16_000 (Hist.max_ns into);
  (* Rank 6 of 12 is still one of a's exact small samples. *)
  Alcotest.(check (float 0.0)) "p50 from the small side" 6.0 (Hist.p50 into)

let test_quantile_monotone () =
  let h = Hist.create () in
  let rng = Workload.Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    Hist.add h (Workload.Prng.int rng ~bound:1_000_000)
  done;
  let prev = ref 0.0 in
  List.iter
    (fun q ->
      let v = Hist.quantile h q in
      if v < !prev then
        Alcotest.failf "quantile not monotone at %f: %f < %f" q v !prev;
      prev := v)
    [ 0.0; 0.1; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "exact small buckets" `Quick test_exact_small;
    Alcotest.test_case "log resolution" `Quick test_resolution;
    Alcotest.test_case "top bucket exact max" `Quick test_top_bucket_exact_max;
    Alcotest.test_case "negative clamps" `Quick test_negative_clamps;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "quantile monotone" `Quick test_quantile_monotone;
  ]
