let () =
  Alcotest.run "service"
    [ ("hist", Test_hist.suite); ("harness", Test_harness.suite) ]
