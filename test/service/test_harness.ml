open Service

(* The harness's accounting invariants hold for every request shape:
   each run serves exactly the configured requests and returns every
   pooled object it took (allocs = frees after the final drains). *)

let shapes =
  [
    "steady"; "rpc"; "bursty"; "long_tail"; "producer_consumer";
    "frag_adversary"; "recorded_dlm";
  ]

let small ?(domains = 2) ?(requests = 1_500) scenario =
  { (Service.default ~scenario) with Service.domains; requests }

let check_balanced o =
  let s = o.Service.o_stats in
  Alcotest.(check int)
    "allocs = frees" s.Pstats.s_allocs s.Pstats.s_frees;
  Alcotest.(check int)
    "ops = allocs + frees"
    (s.Pstats.s_allocs + s.Pstats.s_frees)
    o.Service.o_ops;
  Alcotest.(check bool) "did work" true (s.Pstats.s_allocs > 0)

let test_all_shapes () =
  List.iter
    (fun scenario ->
      let o = Service.run (small scenario) in
      Alcotest.(check int)
        (scenario ^ ": all requests served")
        3_000 o.Service.o_requests;
      check_balanced o;
      Alcotest.(check int)
        (scenario ^ ": every sample recorded")
        3_000
        (List.fold_left
           (fun a d -> a + d.Service.d_requests)
           0 o.Service.o_per_domain))
    shapes

let test_unknown_scenario () =
  match Service.run (small "no_such_shape") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_single_domain () =
  (* With one domain there is nobody to send to: the cross-domain
     shapes degenerate to local release and must still balance. *)
  let o = Service.run (small ~domains:1 "producer_consumer") in
  Alcotest.(check int) "served" 1_500 o.Service.o_requests;
  check_balanced o

let test_alloc_count_deterministic () =
  (* Allocation decisions are pure functions of the seed; timing is
     not.  Two runs of the same config take the same pool traffic. *)
  let cfg = small "bursty" in
  let a = Service.run cfg and b = Service.run cfg in
  Alcotest.(check int)
    "same allocs" a.Service.o_stats.Pstats.s_allocs
    b.Service.o_stats.Pstats.s_allocs;
  let c = Service.run { cfg with Service.seed = 43 } in
  Alcotest.(check bool)
    "seed moves the draw" true
    (c.Service.o_stats.Pstats.s_allocs
    <> a.Service.o_stats.Pstats.s_allocs)

let test_open_arrival () =
  let o =
    Service.run
      { (small ~requests:1_000 "steady") with Service.arrival = `Open_ns 200 }
  in
  Alcotest.(check int) "served" 2_000 o.Service.o_requests;
  check_balanced o;
  Alcotest.(check bool)
    "latency measured" true
    (o.Service.o_p50 > 0. && not (Float.is_nan o.Service.o_p999))

let test_adaptive_mode () =
  let o =
    Service.run
      {
        (small ~domains:2 ~requests:20_000 "producer_consumer") with
        Service.mode = `Adaptive;
        target = 4;
        depot_batches = 4;
      }
  in
  check_balanced o;
  let s = o.Service.o_stats in
  Alcotest.(check int)
    "trajectory records every step"
    (s.Pstats.s_grows + s.Pstats.s_shrinks)
    (List.length o.Service.o_trajectory);
  Alcotest.(check bool)
    "geometry stayed in range" true
    (o.Service.o_final_target >= 4 && o.Service.o_final_target <= 32)

let test_refill_domain () =
  let o =
    Service.run
      { (small ~requests:2_000 "steady") with Service.refill = true }
  in
  check_balanced o;
  (* The refiller always completes one stocking pass, even if the
     workers finish first. *)
  Alcotest.(check bool) "depot was prefilled" true
    (o.Service.o_stats.Pstats.s_prefills > 0)

let suite =
  [
    Alcotest.test_case "all shapes balance" `Quick test_all_shapes;
    Alcotest.test_case "unknown scenario rejected" `Quick
      test_unknown_scenario;
    Alcotest.test_case "single domain" `Quick test_single_domain;
    Alcotest.test_case "alloc count deterministic" `Quick
      test_alloc_count_deterministic;
    Alcotest.test_case "open arrival" `Quick test_open_arrival;
    Alcotest.test_case "adaptive mode" `Quick test_adaptive_mode;
    Alcotest.test_case "refill domain" `Quick test_refill_domain;
  ]
