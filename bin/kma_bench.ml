(* Experiment driver: one subcommand per paper artifact.  See DESIGN.md
   for the experiment index and EXPERIMENTS.md for recorded results. *)

open Cmdliner

(* Validated argument converters: an out-of-range CPU count or fault
   rate becomes a clear usage error (non-zero exit) at parse time
   instead of an exception escaping from the simulator. *)
let cpus_range = (1, Sim.Config.max_cpus) (* Sim.Config's accepted range *)

let check_cpus n =
  let lo, hi = cpus_range in
  if n >= lo && n <= hi then Ok n
  else
    Error
      (`Msg (Printf.sprintf "CPU count %d out of range [%d, %d]" n lo hi))

let cpus_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n -> check_cpus n
    | None -> Error (`Msg (Printf.sprintf "invalid CPU count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let cpu_list_conv =
  let parse s =
    let rec all = function
      | [] -> Ok ()
      | Error e :: _ -> Error e
      | Ok _ :: rest -> all rest
    in
    let parts = String.split_on_char ',' s in
    let checked =
      List.map
        (fun p ->
          match int_of_string_opt (String.trim p) with
          | Some n -> check_cpus n
          | None -> Error (`Msg (Printf.sprintf "invalid CPU count %S" p)))
        parts
    in
    match all checked with
    | Error e -> Error e
    | Ok () -> Ok (List.map (function Ok n -> n | Error _ -> assert false) checked)
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
  in
  Arg.conv (parse, print)

let check_rate r =
  if r >= 0. && r <= 1. then Ok r
  else Error (`Msg (Printf.sprintf "fault rate %g out of range [0, 1]" r))

let rate_list_conv =
  let parse s =
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match float_of_string_opt (String.trim p) with
          | Some r -> (
              match check_rate r with
              | Ok r -> go (r :: acc) rest
              | Error e -> Error e)
          | None -> Error (`Msg (Printf.sprintf "invalid fault rate %S" p)))
    in
    go [] parts
  in
  let print ppf l =
    Format.pp_print_string ppf
      (String.concat "," (List.map (Printf.sprintf "%g") l))
  in
  Arg.conv (parse, print)

(* Shared --jobs plumbing: sweeps of independent cells fan out over
   the lib/parallel domain pool.  Validated like the other converters:
   a zero or negative job count is a usage error at parse time. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "job count %d out of range (want >= 1)" n))
    | None -> Error (`Msg (Printf.sprintf "invalid job count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_flag =
  Arg.(
    value
    & opt jobs_conv (Parallel.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Fan the sweep's independent cells out over $(docv) domains \
           (default: the host's recommended domain count).  Results are \
           bit-identical at any job count.")

(* Shared --geometry plumbing: the flag overrides whatever the
   KMA_GEOMETRY environment variable installed at startup.  Parse
   errors are usage errors at the cmdliner layer (non-zero exit before
   any simulation runs). *)
let geometry_conv =
  let parse s =
    match Sim.Geometry.of_string s with
    | Ok g -> Ok g
    | Error msg -> Error (`Msg msg)
  in
  let print ppf g = Format.pp_print_string ppf (Sim.Geometry.to_string g) in
  Arg.conv (parse, print)

let geometry_flag =
  Arg.(
    value
    & opt (some geometry_conv) None
    & info [ "geometry" ] ~docv:"SPEC"
        ~doc:
          "Cache geometry and cost model for the simulated machine, as a \
           comma-separated key=value list over the recorded-results \
           default (keys: line, lines, assoc, insn, miss, c2c, upgrade, \
           rmw).  Overrides the $(b,KMA_GEOMETRY) environment variable.")

let with_geometry g f =
  (match g with Some g -> Sim.Geometry.set_ambient g | None -> ());
  f ()

(* Allocator names are user input on several subcommands; an unknown
   name must fail usage-style with the full roster, so a typo never
   silently falls back to a default arm. *)
let alloc_conv =
  let parse s =
    match Baseline.Allocator.of_name s with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown allocator %s (valid: %s)" s
               Baseline.Allocator.roster_string))
  in
  let print ppf w =
    Format.pp_print_string ppf (Baseline.Allocator.name_of w)
  in
  Arg.conv (parse, print)

let allocs_flag ~default =
  Arg.(
    value
    & opt (list alloc_conv) default
    & info [ "allocs" ] ~docv:"NAME,NAME,..."
        ~doc:
          (Printf.sprintf "Allocator arms to sweep (any of: %s)."
             Baseline.Allocator.roster_string))

let fig7_cmd =
  let cpus =
    Arg.(
      value
      & opt cpu_list_conv Experiments.Fig7.default_cpus
      & info [ "cpus" ] ~docv:"N,N,..." ~doc:"CPU counts to sweep.")
  in
  let iters =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~doc:"Timed alloc/free pairs per CPU.")
  in
  let bytes =
    Arg.(value & opt int 256 & info [ "bytes" ] ~doc:"Block size.")
  in
  let semilog =
    Arg.(
      value & flag
      & info [ "semilog" ] ~doc:"Print the Figure 8 (log10) view too.")
  in
  let gnuplot =
    Arg.(
      value & opt (some string) None
      & info [ "gnuplot" ] ~docv:"PREFIX"
          ~doc:"Write PREFIX.dat and PREFIX.gp for rendering with gnuplot.")
  in
  let whichs = allocs_flag ~default:Baseline.Allocator.all in
  let run geometry whichs cpus iters bytes semilog gnuplot jobs =
    with_geometry geometry @@ fun () ->
    let points = Experiments.Fig7.run ~jobs ~whichs ~cpus ~iters ~bytes () in
    Experiments.Fig7.print_linear points;
    if semilog then Experiments.Fig7.print_semilog points;
    (match gnuplot with
    | Some prefix ->
        Experiments.Plot.write_fig7 points ~prefix;
        Experiments.Plot.write_fig8 points ~prefix:(prefix ^ "-semilog");
        Printf.printf "wrote %s.{dat,gp} and %s-semilog.{dat,gp}\n" prefix
          prefix
    | None -> ());
    if
      List.mem Baseline.Allocator.Cookie whichs
      && List.mem Baseline.Allocator.Oldkma whichs
    then
      Printf.printf "\nsingle-CPU cookie/oldkma ratio: %.1fx\n"
        (Experiments.Fig7.single_cpu_ratio points
           ~num:Baseline.Allocator.Cookie ~den:Baseline.Allocator.Oldkma)
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Best-case pairs/s vs CPUs (Figure 7); $(b,--allocs) swaps in \
          any arm from the laboratory roster.")
    Term.(
      const run $ geometry_flag $ whichs $ cpus $ iters $ bytes $ semilog
      $ gnuplot $ jobs_flag)

let fig8_cmd =
  let cpus =
    Arg.(
      value
      & opt cpu_list_conv Experiments.Fig7.default_cpus
      & info [ "cpus" ] ~docv:"N,N,..." ~doc:"CPU counts to sweep.")
  in
  let iters = Arg.(value & opt int 2000 & info [ "iters" ] ~doc:"Pairs/CPU.") in
  let whichs = allocs_flag ~default:Baseline.Allocator.all in
  let run whichs cpus iters jobs =
    let points = Experiments.Fig7.run ~jobs ~whichs ~cpus ~iters () in
    Experiments.Fig7.print_semilog points
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Same data as fig7 on a semilog scale (Figure 8).")
    Term.(const run $ whichs $ cpus $ iters $ jobs_flag)

let fig9_cmd =
  let alloc =
    Arg.(
      value
      & opt alloc_conv Baseline.Allocator.Newkma
      & info [ "allocator" ] ~doc:"Allocator to sweep.")
  in
  let memory =
    Arg.(
      value & opt int (1024 * 1024)
      & info [ "memory-words" ] ~doc:"Simulated memory size in words.")
  in
  let cap =
    Arg.(
      value & opt int 0
      & info [ "cap" ] ~doc:"Max blocks per size (0 = until exhaustion).")
  in
  let gnuplot =
    Arg.(
      value & opt (some string) None
      & info [ "gnuplot" ] ~docv:"PREFIX"
          ~doc:"Write PREFIX.dat and PREFIX.gp for rendering with gnuplot.")
  in
  let run w memory cap gnuplot =
    let results = Experiments.Fig9.run ~which:w ~memory_words:memory ~cap () in
    Experiments.Fig9.print results;
    (match gnuplot with
    | Some prefix ->
        Experiments.Plot.write_fig9 results ~prefix;
        Printf.printf "wrote %s.dat and %s.gp\n" prefix prefix
    | None -> ());
    if not (Experiments.Fig9.completed results) then
      print_endline
        "NOTE: the sweep wedged (an allocator without coalescing cannot \
         complete this benchmark)"
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Worst-case pairs/s vs block size (Figure 9).")
    Term.(const run $ alloc $ memory $ cap $ gnuplot)

let opcounts_cmd =
  let run jobs = Experiments.Opcounts.print (Experiments.Opcounts.run ~jobs ()) in
  Cmd.v
    (Cmd.info "opcounts" ~doc:"Warm fast-path instruction counts (E2).")
    Term.(const run $ jobs_flag)

(* Shared --lockcheck plumbing: enable the synchronization validator
   around a workload run and print its report afterwards.  The checker
   is host-side (like the flight recorder), so simulated cycle counts
   are unchanged; a violation aborts the run with the diagnosis. *)
let lockcheck_flag =
  Arg.(
    value & flag
    & info [ "lockcheck" ]
        ~doc:
          "Validate the synchronization discipline during the run \
           (lock-order graph / ABBA detection, per-CPU interrupt \
           discipline, locks held across VM calls) and print the \
           lockcheck report. Zero simulated-cycle overhead; a violation \
           aborts with both acquisition backtraces.")

let with_lockcheck ~enabled f =
  if not enabled then f ()
  else begin
    Lockcheck.enable ();
    Fun.protect
      ~finally:(fun () -> Lockcheck.disable ())
      (fun () ->
        let r = f () in
        print_newline ();
        print_string (Lockcheck.report ());
        r)
  end

(* Shared --heapcheck plumbing: arm the heap-consistency checker around
   a workload run; checkpoints fire at the experiments' quiescent
   points.  Like lockcheck, the checker is host-side (uncharged reads
   only), so simulated cycle counts are unchanged.  Any recorded
   violation makes the driver exit non-zero. *)
let heapcheck_mode_conv =
  let parse = function
    | "paranoid" -> Ok Heapcheck.Paranoid
    | "sweep" -> Ok (Heapcheck.Sweep 64)
    | s ->
        Error
          (`Msg
             (Printf.sprintf "unknown heapcheck mode %S (paranoid or sweep)" s))
  in
  let print ppf = function
    | Heapcheck.Paranoid -> Format.pp_print_string ppf "paranoid"
    | Heapcheck.Sweep _ -> Format.pp_print_string ppf "sweep"
  in
  Arg.conv (parse, print)

let heapcheck_flag =
  Arg.(
    value
    & opt ~vopt:(Some Heapcheck.Paranoid) (some heapcheck_mode_conv) None
    & info [ "heapcheck" ] ~docv:"MODE"
        ~doc:
          "Check heap consistency (freelist count words, page-descriptor \
           states, pagepool hints, block conservation, duplicate blocks) \
           at the run's quiescent points and print the heapcheck report. \
           MODE is $(b,paranoid) (default) or $(b,sweep). Zero \
           simulated-cycle overhead; any violation makes the exit status \
           non-zero.")

let with_heapcheck ~mode f =
  match mode with
  | None -> f ()
  | Some mode ->
      Heapcheck.enable ~abort:false ~mode ();
      Fun.protect
        ~finally:(fun () -> Heapcheck.disable ())
        (fun () ->
          let r = f () in
          print_newline ();
          print_string (Heapcheck.report ());
          if Heapcheck.violation_count () > 0 then exit 3;
          r)

let analysis_cmd =
  let samples =
    Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Operations to trace.")
  in
  let run samples lockcheck =
    with_lockcheck ~enabled:lockcheck (fun () ->
        Experiments.Analysis.print (Experiments.Analysis.run ~samples ()))
  in
  Cmd.v
    (Cmd.info "analysis"
       ~doc:
         "allocb/freeb access-cost profile on the old allocator (E1); \
          $(b,--lockcheck) validates the synchronization discipline (E9).")
    Term.(const run $ samples $ lockcheck_flag)

(* Shared --flight-recorder plumbing: install a recorder around a
   workload run and print the report afterwards.  Recording is
   host-side, so the run's simulated cycle counts are unchanged. *)
let flightrec_flag =
  Arg.(
    value & flag
    & info [ "flight-recorder" ]
        ~doc:
          "Record a per-CPU event trace (allocator layers, spinlocks, VM \
           system) and print the flight-recorder report after the run. \
           Zero simulated-cycle overhead.")

let with_flightrec ~enabled ~ncpus f =
  if not enabled then f ()
  else begin
    let fr = Flightrec.Recorder.create ~ncpus () in
    Flightrec.Recorder.install fr;
    Fun.protect
      ~finally:(fun () -> Flightrec.Recorder.uninstall ())
      (fun () ->
        let r = f () in
        print_newline ();
        print_string (Flightrec.Report.to_string fr);
        r)
  end

let missrates_cmd =
  let ncpus = Arg.(value & opt cpus_conv 4 & info [ "cpus" ] ~doc:"CPUs.") in
  let txs =
    Arg.(
      value & opt int 3000
      & info [ "transactions" ] ~doc:"Transactions per CPU.")
  in
  let run geometry ncpus txs flightrec lockcheck heapcheck =
    with_geometry geometry @@ fun () ->
    with_heapcheck ~mode:heapcheck (fun () ->
        with_lockcheck ~enabled:lockcheck (fun () ->
            with_flightrec ~enabled:flightrec ~ncpus (fun () ->
                let r =
                  Experiments.Missrates.run ~ncpus ~transactions_per_cpu:txs ()
                in
                Experiments.Missrates.print r;
                if not (Experiments.Missrates.within_bounds r) then
                  print_endline
                    "WARNING: a measured rate exceeded its analytic bound")))
  in
  Cmd.v
    (Cmd.info "missrates"
       ~doc:
         "Per-layer miss rates under the DLM/OLTP workload (E6); \
          $(b,--flight-recorder) adds the time-resolved trace report; \
          $(b,--lockcheck) validates the synchronization discipline; \
          $(b,--heapcheck) verifies heap consistency after the run.")
    Term.(
      const run $ geometry_flag $ ncpus $ txs $ flightrec_flag
      $ lockcheck_flag $ heapcheck_flag)

let pressure_cmd =
  let ncpus = Arg.(value & opt cpus_conv 4 & info [ "cpus" ] ~doc:"CPUs.") in
  let rounds =
    Arg.(
      value & opt int 30
      & info [ "rounds" ] ~doc:"Alloc/free rounds per CPU.")
  in
  let batch =
    Arg.(value & opt int 120 & info [ "batch" ] ~doc:"Blocks per round.")
  in
  let rates =
    Arg.(
      value
      & opt rate_list_conv Experiments.Pressure.default_rates
      & info [ "rates" ] ~docv:"R,R,..."
          ~doc:"Grant-denial rates to sweep, each in [0, 1].")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fault-injection seed.")
  in
  let run ncpus rounds batch rates seed flightrec lockcheck heapcheck jobs =
    (* The flight recorder and lockcheck keep host-global state, so
       their cells cannot fan out; heapcheck shards (domain-local state,
       deterministic merge) and composes with any job count. *)
    let jobs =
      if (flightrec || lockcheck) && jobs > 1 then begin
        prerr_endline
          "kma_bench: note: --flight-recorder/--lockcheck keep host-global \
           state; forcing --jobs 1 (heapcheck shards and is unaffected)";
        1
      end
      else jobs
    in
    with_heapcheck ~mode:heapcheck (fun () ->
    with_lockcheck ~enabled:lockcheck (fun () ->
    with_flightrec ~enabled:flightrec ~ncpus (fun () ->
        let r =
          Experiments.Pressure.run ~jobs ~ncpus ~rounds ~batch ~rates ~seed ()
        in
        Experiments.Pressure.print r;
        let has x = List.exists (Float.equal x) rates in
        if has 0.0 && has 0.2 then begin
          print_newline ();
          if Experiments.Pressure.graceful r then
            print_endline
              "shape: graceful degradation at 20% denials (>= 50% \
               throughput, zero failures, reap returns pages) while mk \
               fails or hoards"
          else
            print_endline
              "WARNING: the E8 graceful-degradation shape did not hold"
        end)))
  in
  Cmd.v
    (Cmd.info "pressure"
       ~doc:
         "Memory pressure: throughput and pages held vs VM grant-denial \
          rate, cookie/newkma (reap + adaptive targets) vs mk (E8); \
          $(b,--lockcheck) validates the synchronization discipline; \
          $(b,--heapcheck) verifies heap consistency after each cell.")
    Term.(
      const run $ ncpus $ rounds $ batch $ rates $ seed $ flightrec_flag
      $ lockcheck_flag $ heapcheck_flag $ jobs_flag)

let fuzz_cmd =
  let ops =
    Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Trace length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trace seed.") in
  let mode =
    Arg.(
      value
      & opt heapcheck_mode_conv Heapcheck.Paranoid
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Consistency-check cadence: $(b,paranoid) checks after every \
             op, $(b,sweep) every 64 ops.")
  in
  let pressure =
    Arg.(
      value & flag
      & info [ "pressure" ]
          ~doc:"Enable the memory-pressure subsystem (adaptive targets).")
  in
  let debug =
    Arg.(
      value & flag
      & info [ "debug" ] ~doc:"Debug kernel (poisoned frees).")
  in
  let fault_rate =
    let rate_conv =
      let parse s =
        match float_of_string_opt s with
        | Some r -> check_rate r
        | None -> Error (`Msg (Printf.sprintf "invalid fault rate %S" s))
      in
      Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%g" r)
    in
    Arg.(
      value & opt rate_conv 0.
      & info [ "fault-rate" ]
          ~doc:
            "VM grant-denial rate armed by the trace's fault-injection \
             ops (0 removes those ops from the mix).")
  in
  let run ops seed mode pressure debug fault_rate =
    let check_every =
      match mode with Heapcheck.Paranoid -> 1 | Heapcheck.Sweep n -> n
    in
    let cfg =
      Heapcheck.Fuzz.config ~ops ~check_every ~pressure ~debug ~fault_rate
        ~seed ()
    in
    let o = Heapcheck.Fuzz.run cfg in
    Printf.printf
      "fuzz: seed %d, %d ops (%d allocs, %d frees), %d checks, %d cycles\n"
      seed ops o.Heapcheck.Fuzz.allocs o.Heapcheck.Fuzz.frees
      o.Heapcheck.Fuzz.checks o.Heapcheck.Fuzz.cycles;
    match o.Heapcheck.Fuzz.failure with
    | None -> print_endline "all consistency checks passed"
    | Some f ->
        Printf.printf "FAILED after op %d (%s):\n" f.Heapcheck.Fuzz.index
          (Format.asprintf "%a" Heapcheck.Fuzz.pp_op f.Heapcheck.Fuzz.op);
        List.iter
          (fun p -> print_endline ("  " ^ p))
          f.Heapcheck.Fuzz.problems;
        let minimized = Heapcheck.Fuzz.minimize cfg (Heapcheck.Fuzz.gen cfg) in
        Format.printf "minimized reproducer (%d ops):@.%a@."
          (List.length minimized) Heapcheck.Fuzz.pp_trace minimized;
        exit 3
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzz of the new allocator against a reference model \
          with full heap-consistency checking; prints a minimized \
          reproducer and exits non-zero on any violation.")
    Term.(const run $ ops $ seed $ mode $ pressure $ debug $ fault_rate)

let cyclic_cmd =
  let days = Arg.(value & opt int 3 & info [ "days" ] ~doc:"Day/night cycles.") in
  let run days =
    let r = Workload.Cyclic.run_kmem ~days () in
    Experiments.Series.heading "Cyclic day/night workload (new allocator)";
    Printf.printf
      "day allocs: %d\nnight large allocs: %d (failures: %d)\n\
       pages held after day: %d\npages held at night: %d\n"
      r.Workload.Cyclic.day_allocs r.Workload.Cyclic.night_allocs
      r.Workload.Cyclic.night_failures r.Workload.Cyclic.day_peak_pages
      r.Workload.Cyclic.night_pages
  in
  Cmd.v
    (Cmd.info "cyclic"
       ~doc:"Day/night workload: coalescing reuses day memory at night.")
    Term.(const run $ days)

let crosscpu_cmd =
  let pairs =
    Arg.(value & opt int 2 & info [ "pairs" ] ~doc:"Producer/consumer pairs.")
  in
  let blocks =
    Arg.(
      value & opt int 2000
      & info [ "blocks" ] ~doc:"Blocks transferred per pair.")
  in
  let run pairs blocks jobs =
    Experiments.Series.heading
      "Producer/consumer flow through the global layer";
    let rows =
      Parallel.map ~jobs
        (fun which ->
          let r =
            Workload.Crosscpu.run ~which ~pairs ~blocks_per_pair:blocks ()
          in
          [
            Baseline.Allocator.name_of which;
            Experiments.Series.sci r.Workload.Crosscpu.transfers_per_sec;
          ])
        (Baseline.Allocator.all @ [ Baseline.Allocator.Lazybuddy ])
    in
    Experiments.Series.table ~header:[ "allocator"; "transfers/s" ] rows
  in
  Cmd.v
    (Cmd.info "crosscpu"
       ~doc:"Cross-CPU producer/consumer throughput (the global layer's job).")
    Term.(const run $ pairs $ blocks $ jobs_flag)

let trace_cmd =
  let ops =
    Arg.(value & opt int 3000 & info [ "ops" ] ~doc:"Trace length (events).")
  in
  let seed = Arg.(value & opt int 13 & info [ "seed" ] ~doc:"Trace seed.") in
  let run ops seed =
    let t = Workload.Trace.synthesize ~ops ~seed () in
    (match Workload.Trace.validate t with
    | Ok () -> ()
    | Error e -> failwith ("synthesized trace invalid: " ^ e));
    Experiments.Series.heading
      (Printf.sprintf "Trace replay: %d events, seed %d, one CPU"
         (List.length t) seed);
    let rows =
      List.map
        (fun which ->
          let m =
            Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ())
          in
          let a = Baseline.Allocator.create which m in
          let r = Workload.Trace.replay m t a in
          let cfg = Sim.Machine.config m in
          [
            Baseline.Allocator.name_of which;
            string_of_int r.Workload.Trace.failures;
            string_of_int r.Workload.Trace.skipped_frees;
            Experiments.Series.sci
              (float_of_int r.Workload.Trace.ops
              /. Sim.Config.seconds_of_cycles cfg r.Workload.Trace.cycles);
          ])
        (Baseline.Allocator.all @ [ Baseline.Allocator.Lazybuddy ])
    in
    Experiments.Series.table
      ~header:[ "allocator"; "failures"; "skipped"; "ops/s" ]
      rows
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Synthesize an allocation trace and replay it bit-for-bit on every \
          allocator.")
    Term.(const run $ ops $ seed)

let scenario_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Scenario to replay ($(b,list) or omit to list the library).")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Override the scenario's default seed.")
  in
  let scale =
    Arg.(
      value & opt float 1.
      & info [ "scale" ] ~docv:"K"
          ~doc:"Rate scaling: divide recorded inter-arrival gaps by $(docv).")
  in
  let cpus =
    Arg.(
      value
      & opt (some cpus_conv) None
      & info [ "cpus" ] ~docv:"N"
          ~doc:
            "Fan the trace out to $(docv) CPUs (must be a multiple of the \
             scenario's own CPU count; ids are remapped deterministically).")
  in
  let windows =
    Arg.(
      value & opt int 16
      & info [ "windows" ]
          ~doc:"Analysis windows (fragmentation samples) for --report.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Replay under the flight recorder and print the full pathology \
             report instead of the one-line result.")
  in
  let list_library () =
    Experiments.Series.heading "Scenario library";
    Experiments.Series.table
      ~header:[ "name"; "cpus"; "seed"; "target pathology"; "summary" ]
      (List.map
         (fun (s : Scenario.t) ->
           [
             s.Scenario.name;
             string_of_int s.Scenario.ncpus;
             string_of_int s.Scenario.default_seed;
             Option.value s.Scenario.target ~default:"-";
             s.Scenario.summary;
           ])
         Scenario.all)
  in
  let whichs = allocs_flag ~default:[ Baseline.Allocator.Newkma ] in
  let run name seed scale cpus windows report whichs heapcheck =
    match name with
    | None | Some "list" -> list_library ()
    | Some n -> (
        match Scenario.find n with
        | None ->
            Printf.eprintf "unknown scenario %S (try: %s)\n" n
              (String.concat ", " (Scenario.names ()));
            exit 2
        | Some sc ->
            let seed = Option.value seed ~default:sc.Scenario.default_seed in
            let t = sc.Scenario.generate ~seed in
            let t =
              if scale = 1. then t else Workload.Trace.scale_rate ~factor:scale t
            in
            let t =
              match cpus with
              | None -> t
              | Some c ->
                  let base = max 1 (Workload.Trace.ncpus t) in
                  if c mod base <> 0 then begin
                    Printf.eprintf
                      "--cpus %d is not a multiple of the scenario's %d\n" c
                      base;
                    exit 2
                  end;
                  Workload.Trace.fan_out ~copies:(c / base) t
            in
            (match Workload.Trace.validate t with
            | Ok () -> ()
            | Error e -> failwith ("scenario trace invalid: " ^ e));
            let one which =
              (* With the default single-arm roster the label is the
                 bare scenario name, keeping the output byte-identical
                 to the pre---allocs driver. *)
              let label =
                if which = Baseline.Allocator.Newkma then n
                else
                  Printf.sprintf "%s[%s]" n
                    (Baseline.Allocator.name_of which)
              in
              if report then
                print_string
                  (Scenario.Pathology.to_string
                     (Scenario.Pathology.analyze ~windows ~which ~name:label t))
              else begin
                let ncpus = max 1 (Workload.Trace.ncpus t) in
                let cfg = Workload.Rig.paper_config ~ncpus () in
                let m = Sim.Machine.create cfg in
                let print_result r =
                  let cfg = Sim.Machine.config m in
                  Printf.printf
                    "scenario %s: seed %d, %d CPUs, %d events -> %d ops (%d \
                     failed, %d skipped frees) in %d cycles (%s ops/s)\n"
                    label seed ncpus (List.length t) r.Workload.Trace.ops
                    r.Workload.Trace.failures r.Workload.Trace.skipped_frees
                    r.Workload.Trace.cycles
                    (Experiments.Series.sci
                       (float_of_int r.Workload.Trace.ops
                       /. Sim.Config.seconds_of_cycles cfg
                            r.Workload.Trace.cycles))
                in
                match which with
                | Baseline.Allocator.Newkma ->
                    (* newkma booted by hand so --heapcheck can
                       checkpoint against the kmem handle after the
                       replay. *)
                    let kmem =
                      Kma.Kmem.create m
                        ~params:
                          (Kma.Params.auto
                             ~memory_words:cfg.Sim.Config.memory_words)
                        ()
                    in
                    let a =
                      {
                        Baseline.Allocator.name = "newkma";
                        alloc =
                          (fun ~bytes ->
                            match Kma.Kmem.try_alloc kmem ~bytes with
                            | Some addr -> addr
                            | None -> 0);
                        free =
                          (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
                      }
                    in
                    let r = Workload.Trace.replay m t a in
                    Heapcheck.checkpoint kmem;
                    print_result r
                | w ->
                    let a, probe = Baseline.Allocator.create_probed w m in
                    let r = Workload.Trace.replay m t a in
                    print_result r;
                    (match probe.Baseline.Allocator.stats with
                    | Some st ->
                        Printf.printf "  probe: %s\n"
                          (Lockfree.Stats.to_string st)
                    | None -> ())
              end
            in
            with_heapcheck ~mode:heapcheck (fun () -> List.iter one whichs))
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Replay a library scenario (production-shaped multi-CPU trace), \
          optionally scaled with $(b,--scale) / $(b,--cpus); \
          $(b,--report) prints the pathology analysis with flight-recorder \
          evidence; $(b,--allocs) replays the same trace on other roster \
          arms (e.g. the lock-free pair) under the same detectors.")
    Term.(
      const run $ name_arg $ seed $ scale $ cpus $ windows $ report $ whichs
      $ heapcheck_flag)

let lockfree_cmd =
  let cpus =
    Arg.(
      value
      & opt cpu_list_conv Experiments.Lockfree_arms.default_cpus
      & info [ "cpus" ] ~docv:"N,N,..." ~doc:"CPU counts to sweep.")
  in
  let iters =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~doc:"Timed alloc/free pairs per CPU.")
  in
  let bytes =
    Arg.(value & opt int 256 & info [ "bytes" ] ~doc:"Block size.")
  in
  let whichs =
    allocs_flag ~default:Experiments.Lockfree_arms.default_whichs
  in
  let pairs =
    Arg.(
      value
      & opt cpu_list_conv Experiments.Lockfree_arms.default_pairs
      & info [ "pairs" ]
          ~docv:"N,N,..."
          ~doc:
            "Producer/consumer pair counts for the remote-free companion \
             sweep (each pair is 2 CPUs).")
  in
  let blocks =
    Arg.(
      value & opt int 400
      & info [ "blocks" ] ~doc:"Blocks transferred per pair (remote sweep).")
  in
  let run geometry whichs cpus iters bytes pairs blocks jobs =
    with_geometry geometry @@ fun () ->
    match Experiments.Lockfree_arms.run ~jobs ~whichs ~cpus ~iters ~bytes () with
    | points -> (
        Experiments.Lockfree_arms.print_throughput points;
        Experiments.Lockfree_arms.print_retries points;
        let remote =
          Experiments.Lockfree_arms.run_crosscpu ~jobs ~whichs ~pairs
            ~blocks_per_pair:blocks ~bytes ()
        in
        Experiments.Lockfree_arms.print_crosscpu remote;
        let storm =
          Experiments.Lockfree_arms.run_storm ~jobs
            ~whichs:
              (List.filter
                 (fun w -> List.mem w Baseline.Allocator.lockfree)
                 whichs)
            ~cpus ()
        in
        Experiments.Lockfree_arms.print_storm storm)
    | exception Experiments.Lockfree_arms.Conservation msg ->
        Printf.eprintf "kma_bench lockfree: conservation violated: %s\n" msg;
        exit 3
  in
  Cmd.v
    (Cmd.info "lockfree"
       ~doc:
         "Lock-based vs lock-free head-to-head (E13): the Figure 7 \
          methodology over the non-blocking arms, with CAS-retry and \
          helping counters and a conservation check per cell.")
    Term.(
      const run $ geometry_flag $ whichs $ cpus $ iters $ bytes $ pairs
      $ blocks $ jobs_flag)

let numa_cmd =
  let node_list_conv =
    let parse s =
      let parts = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match int_of_string_opt (String.trim p) with
            | Some n when n >= 1 -> go (n :: acc) rest
            | Some n ->
                Error
                  (`Msg (Printf.sprintf "node count %d out of range (>= 1)" n))
            | None -> Error (`Msg (Printf.sprintf "invalid node count %S" p)))
      in
      go [] parts
    in
    let print ppf l =
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
    in
    Arg.conv (parse, print)
  in
  let cpus =
    Arg.(
      value
      & opt cpu_list_conv Experiments.Numa.default_cpus
      & info [ "cpus" ] ~docv:"N,N,..." ~doc:"CPU counts to sweep.")
  in
  let nodes =
    Arg.(
      value
      & opt node_list_conv Experiments.Numa.default_nodes
      & info [ "nodes" ] ~docv:"N,N,..."
          ~doc:
            "NUMA node counts to sweep (1 = the flat baseline; node counts \
             exceeding a cell's CPU count are skipped).")
  in
  let iters =
    Arg.(
      value & opt int 12 & info [ "iters" ] ~doc:"Timed bursts per CPU.")
  in
  let depth =
    Arg.(
      value & opt int 64
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Burst size: blocks held live at once per CPU.  Keep it above \
             twice the per-CPU cache target or the global layer goes quiet \
             and the sweep measures nothing.")
  in
  let bytes =
    Arg.(value & opt int 256 & info [ "bytes" ] ~doc:"Block size.")
  in
  let whichs = allocs_flag ~default:Experiments.Numa.default_whichs in
  let run geometry whichs cpus nodes iters depth bytes jobs =
    with_geometry geometry @@ fun () ->
    Experiments.Numa.print ~depth
      (Experiments.Numa.run ~jobs ~whichs ~cpus ~nodes ~iters ~depth ~bytes ())
  in
  Cmd.v
    (Cmd.info "numa"
       ~doc:
         "NUMA scaling sweep (E14): global-layer churn at 128-512 CPUs \
          across 2-8 nodes, flat gblfree (newkma) vs per-node gblfree \
          (numakma).  $(b,--geometry) sets the base cost model (keys \
          nodes/node_miss/node_c2c price the cross-node surcharges); \
          $(b,--nodes) sweeps the machine's node count on top of it.")
    Term.(
      const run $ geometry_flag $ whichs $ cpus $ nodes $ iters $ depth
      $ bytes $ jobs_flag)

let geometry_cmd =
  let ncpus =
    Arg.(value & opt cpus_conv 8 & info [ "cpus" ] ~doc:"CPUs per cell.")
  in
  let iters =
    Arg.(
      value & opt int 50
      & info [ "iters" ] ~doc:"Timed bursts per CPU per cell.")
  in
  let depth =
    Arg.(
      value & opt int 96
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Burst size: blocks held live at once per CPU.  The default \
             overflows the smaller geometries, which is what makes the \
             line-size axis informative.")
  in
  let bytes =
    Arg.(value & opt int 256 & info [ "bytes" ] ~doc:"Block size.")
  in
  let run geometry ncpus iters depth bytes jobs =
    with_geometry geometry @@ fun () ->
    Experiments.Geomsweep.print ~ncpus ~depth
      (Experiments.Geomsweep.run ~jobs ~ncpus ~iters ~depth ~bytes ())
  in
  Cmd.v
    (Cmd.info "geometry"
       ~doc:
         "Cache-geometry sweep (E12): miss rate and cycles per \
          alloc/write/free pair vs line size and associativity, newkma vs \
          cookie.  $(b,--geometry) here sets the $(i,base) cost model the \
          sweep varies line size and associativity around.")
    Term.(
      const run $ geometry_flag $ ncpus $ iters $ depth $ bytes $ jobs_flag)

let service_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Scenario shape to serve ($(b,list) or omit to list the shapes).")
  in
  let mode_conv =
    let parse = function
      | "fixed" -> Ok `Fixed
      | "adaptive" -> Ok `Adaptive
      | "both" -> Ok `Both
      | s ->
          Error
            (`Msg
              (Printf.sprintf "unknown mode %S (valid: fixed, adaptive, both)"
                 s))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with `Fixed -> "fixed" | `Adaptive -> "adaptive" | `Both -> "both")
    in
    Arg.conv (parse, print)
  in
  let arrival_conv =
    let parse s =
      if s = "closed" then Ok `Closed
      else
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "open" -> (
            let rest = String.sub s (i + 1) (String.length s - i - 1) in
            match int_of_string_opt rest with
            | Some m when m >= 1 -> Ok (`Open_ns m)
            | _ ->
                Error
                  (`Msg
                    (Printf.sprintf
                       "bad open-loop mean %S (want open:<mean-ns>, >= 1)" rest)))
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown arrival %S (valid: closed, open:<mean-ns>)" s))
    in
    let print ppf (a : Service.arrival) =
      Format.pp_print_string ppf
        (match a with
        | `Closed -> "closed"
        | `Open_ns m -> Printf.sprintf "open:%d" m)
    in
    Arg.conv (parse, print)
  in
  let pos_int what =
    let parse s =
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (`Msg (Printf.sprintf "bad %s %S (want an int >= 1)" what s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let domains =
    Arg.(
      value
      & opt (pos_int "domain count") 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains (default 2).")
  in
  let requests =
    Arg.(
      value
      & opt (pos_int "request count") 100_000
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests served per domain (default 100000).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv `Both
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Pool geometry: $(b,fixed), $(b,adaptive), or $(b,both) to A/B \
             them on the same load (default).")
  in
  let refill =
    Arg.(
      value & flag
      & info [ "refill" ]
          ~doc:
            "Add a dedicated depot-refill domain (SpeedMalloc's allocation \
             core): workers never pay constructor cost in steady state.")
  in
  let target =
    Arg.(
      value
      & opt (pos_int "target") 16
      & info [ "target" ] ~doc:"Base magazine target (batch size).")
  in
  let depot_batches =
    Arg.(
      value
      & opt (pos_int "depot bound") 32
      & info [ "depot-batches" ] ~doc:"Base depot bound, in batches.")
  in
  let arrival =
    Arg.(
      value
      & opt arrival_conv `Closed
      & info [ "arrival" ] ~docv:"KIND"
          ~doc:
            "Request arrival: $(b,closed) (back-to-back) or \
             $(b,open:<mean-ns>) (seeded inter-arrival, latency measured \
             from the scheduled arrival).")
  in
  let obj_bytes =
    Arg.(
      value
      & opt (pos_int "object size") 256
      & info [ "obj-bytes" ] ~doc:"Pooled object size in bytes.")
  in
  let list_shapes () =
    Experiments.Series.heading "Service shapes (lib/scenario request graphs)";
    Experiments.Series.table
      ~header:[ "name"; "served as" ]
      (List.filter_map
         (fun (s : Scenario.t) ->
           match Service.shape_of_scenario s.Scenario.name with
           | None -> None
           | Some _ -> Some [ s.Scenario.name; s.Scenario.summary ])
         Scenario.all)
  in
  let run name domains requests seed mode refill target depot_batches arrival
      obj_bytes =
    match name with
    | None | Some "list" -> list_shapes ()
    | Some n -> (
        match Service.shape_of_scenario n with
        | None ->
            Printf.eprintf "unknown scenario %S (try: %s)\n" n
              (String.concat ", " (Scenario.names ()));
            exit 2
        | Some _ ->
            let cfg =
              {
                (Service.default ~scenario:n) with
                Service.domains;
                requests;
                seed;
                refill;
                target;
                depot_batches;
                arrival;
                obj_bytes;
              }
            in
            let serve m =
              let o = Service.run { cfg with Service.mode = m } in
              print_string (Service.to_string o);
              o
            in
            (match mode with
            | `Fixed -> ignore (serve `Fixed)
            | `Adaptive -> ignore (serve `Adaptive)
            | `Both ->
                let f = serve `Fixed in
                print_newline ();
                let a = serve `Adaptive in
                let rate o =
                  if Float.is_nan o.Service.o_contention then 0.
                  else o.Service.o_contention
                in
                Printf.printf
                  "\nfixed vs adaptive: contended acquisitions %d -> %d \
                   (rate %.4f -> %.4f), p99 %.0f -> %.0f ns\n"
                  f.Service.o_stats.Objpool.Pstats.s_depot_contended
                  a.Service.o_stats.Objpool.Pstats.s_depot_contended (rate f)
                  (rate a) f.Service.o_p99 a.Service.o_p99))
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Serve a production-shaped request load through the native \
          per-domain pool (lib/service): multi-domain workers, cross-domain \
          frees, p50/p99/p999 request latency, and depot-contention \
          accounting, with $(b,--mode both) A/B-ing fixed vs \
          contention-adaptive pool geometry (E15).")
    Term.(
      const run $ name_arg $ domains $ requests $ seed $ mode $ refill
      $ target $ depot_batches $ arrival $ obj_bytes)

let default =
  Term.(
    ret
      (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  (* KMA_GEOMETRY first, so an explicit --geometry flag wins. *)
  (match Sim.Geometry.of_env () with
  | Ok g -> Sim.Geometry.set_ambient g
  | Error msg ->
      Printf.eprintf "kma_bench: bad %s: %s\n" Sim.Geometry.env_var msg;
      exit 2);
  let info =
    Cmd.info "kma_bench" ~version:"1.0"
      ~doc:
        "Reproduces the tables and figures of McKenney & Slingwine, USENIX \
         Winter 1993."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig7_cmd; fig8_cmd; fig9_cmd; opcounts_cmd; analysis_cmd;
            missrates_cmd; geometry_cmd; numa_cmd; lockfree_cmd;
            pressure_cmd; fuzz_cmd; cyclic_cmd; crosscpu_cmd; trace_cmd;
            scenario_cmd; service_cmd;
          ]))
