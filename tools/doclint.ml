(* doclint — the documentation gate for the library interfaces.

   odoc is not part of this build environment, so [dune build @doc] is
   a silent no-op; this linter enforces the documentation contract the
   doc build would otherwise catch, plus one contract it would not:

   1. every .mli begins with a module-level (** ... *) comment;
   2. that comment says where the module stands relative to the source
      paper (a named section, a figure, or an explicit "not part of
      the paper" disclaimer);
   3. every doc comment in the file has balanced odoc markup braces
      (the classic silently-broken markup: an unclosed {v, {[ or {!);
   4. interfaces that export a lock or critical-section API must state
      their synchronization discipline on an "Invariants:" doc line —
      the prose the lockcheck validator dynamically enforces.

   Exits non-zero naming every violation, so the @docs alias (run as
   part of dune runtest) fails the build. *)

let errors = ref 0

let fail file msg =
  incr errors;
  Printf.eprintf "doclint: %s: %s\n" file msg

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

(* The ways a module is allowed to situate itself: a reference into the
   paper (named section or figure — the repo's idiom never invents
   numbered sections), a citation of a PAPERS.md related-work entry
   (the extension arms reproduce designs from the literature around
   the paper, not the paper itself), or an explicit statement that it
   is reproduction infrastructure with no paper counterpart. *)
let paper_markers =
  [
    "paper";
    "Figure 2";
    "Figure 7";
    "Figure 8";
    "Figure 9";
    "Design section";
    "Measurements";
    "Future Directions";
    "PAPERS.md";
  ]

(* First (** ... *) comment starting at [i]; returns (body, end_pos)
   honouring OCaml's nested comments. *)
let parse_comment src i =
  let n = String.length src in
  let buf = Buffer.create 256 in
  let rec go i depth =
    if i >= n then None
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      Buffer.add_string buf "(*";
      go (i + 2) (depth + 1)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then
      if depth = 0 then Some (Buffer.contents buf, i + 2)
      else begin
        Buffer.add_string buf "*)";
        go (i + 2) (depth - 1)
      end
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1) depth
    end
  in
  go i 0

let rec skip_ws src i =
  if i < String.length src && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t')
  then skip_ws src (i + 1)
  else i

(* Interfaces exporting a lock or critical-section API: their module
   doc must carry an "Invariants:" line naming the discipline (who may
   take the lock, in what order, under what interrupt state).  This is
   the written half of the contract lib/lockcheck checks at run time. *)
let invariants_required =
  [
    "spinlock.mli"; "global.mli"; "pagepool.mli"; "vmblk.mli"; "percpu.mli";
    "check.mli"; "heapcheck.mli"; "nbbuddy.mli"; "bwfixed.mli"; "stats.mli";
    "depot.mli";
  ]

(* Lock-free interfaces: correctness rests on a linearization argument,
   not a lock discipline, so their module doc must also carry a
   "Linearization:" paragraph naming the linearization point of every
   hot path (the written half of what the conservation oracles and the
   fast=scheduled determinism tests check dynamically). *)
let linearization_required = [ "nbbuddy.mli"; "bwfixed.mli" ]

let check_module_doc file src =
  let i = skip_ws src 0 in
  if
    i + 3 > String.length src
    || String.sub src i 3 <> "(**"
    || (i + 3 < String.length src && src.[i + 3] = '*')
  then
    fail file "must start with a module-level (** ... *) doc comment"
  else
    match parse_comment src (i + 3) with
    | None -> fail file "unterminated module doc comment"
    | Some (body, _) ->
        if not (List.exists (contains body) paper_markers) then
          fail file
            "module doc comment must state which paper section or figure \
             the module reproduces (or that it has no paper counterpart)";
        if
          List.mem (Filename.basename file) invariants_required
          && not (contains body "Invariants:")
        then
          fail file
            "interface exports a lock or critical-section API: module doc \
             must carry an \"Invariants:\" line naming its \
             synchronization discipline";
        if
          List.mem (Filename.basename file) linearization_required
          && not (contains body "Linearization:")
        then
          fail file
            "lock-free interface: module doc must carry a \
             \"Linearization:\" paragraph naming the linearization point \
             of each operation"

(* Walk every doc comment and check its markup braces pair up.  Odoc
   markup is brace-delimited ({v ... v}, {[ ... ]}, {!ref}, {1 head});
   an unbalanced brace is exactly the corruption a missing doc build
   would let through. *)
let check_markup file src =
  let n = String.length src in
  let rec scan i =
    if i + 2 < n && src.[i] = '(' && src.[i + 1] = '*' && src.[i + 2] = '*'
    then
      match parse_comment src (i + 3) with
      | None -> fail file "unterminated doc comment"
      | Some (body, j) ->
          let depth = ref 0 and bad = ref false in
          String.iter
            (fun c ->
              if c = '{' then incr depth
              else if c = '}' then begin
                decr depth;
                if !depth < 0 then bad := true
              end)
            body;
          if !bad || !depth <> 0 then
            fail file
              (Printf.sprintf "unbalanced odoc markup braces in \"%s...\""
                 (String.sub body 0 (min 40 (String.length body))));
          scan j
    else if i < n then scan (i + 1)
  in
  scan 0

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "doclint: no files given";
    exit 2
  end;
  List.iter
    (fun f ->
      let src = read_file f in
      check_module_doc f src;
      check_markup f src)
    files;
  if !errors > 0 then exit 1
